//! Edge cases of the trace layer that the happy-path tests skip over:
//! exporting a registry nothing ever wrote to, histograms with a single
//! observation (all quantiles must agree), and spans recorded from
//! several threads into one registry.

use std::sync::Arc;

use edgepc_trace::export::{breakdown_json, chrome_trace_json, registry_json};
use edgepc_trace::json::parse;
use edgepc_trace::{span_in, with_local, with_registry, Registry};

#[test]
fn empty_registry_exports_valid_empty_documents() {
    let reg = Registry::new();
    let doc = registry_json(&reg);
    let v = parse(&doc).expect("empty registry export must stay valid JSON");
    assert!(v.get("counters").unwrap().get("anything").is_none());
    assert!(v.get("gauges").unwrap().get("anything").is_none());
    assert!(v.get("histograms").unwrap().get("anything").is_none());

    // Same for the span-based exporters over zero spans.
    let chrome = chrome_trace_json(&[]);
    assert_eq!(parse(&chrome).unwrap().as_arr().unwrap().len(), 0);
    let breakdown = breakdown_json("empty", &[]);
    let b = parse(&breakdown).unwrap();
    assert_eq!(b.get("name").unwrap().as_str(), Some("empty"));
    assert_eq!(b.get("stages").unwrap().as_arr().unwrap().len(), 0);
}

#[test]
fn single_sample_histogram_quantiles_coincide() {
    let reg = Registry::new();
    reg.observe_us("lonely.stage", 777);
    let h = reg.histogram("lonely.stage").unwrap();
    assert_eq!(h.count(), 1);
    // With one observation every quantile is that observation's bucket:
    // p50, p95, and p99 must agree exactly, and bracket the raw value.
    assert_eq!(h.p50(), h.p95());
    assert_eq!(h.p95(), h.p99());
    assert!(h.min() <= 777 && 777 <= h.max());
    assert_eq!(h.min(), h.max());
}

#[test]
fn spans_nest_across_threads_without_cross_talk() {
    let ((), spans) = with_local(|| {
        let reg = edgepc_trace::current_registry();
        let _outer = span_in(reg.clone(), "fan.out", "model");
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let reg: Arc<Registry> = reg.clone();
                std::thread::spawn(move || {
                    // Spawned threads do not inherit the parent's
                    // installation; they record via with_registry/span_in.
                    with_registry(reg, || {
                        let _outer = edgepc_trace::span(format!("worker{t}.outer"), "thread");
                        let _inner = edgepc_trace::span(format!("worker{t}.inner"), "thread");
                    });
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });

    // 1 fan.out span + 2 spans per worker.
    assert_eq!(spans.len(), 9);
    let outer = spans.iter().find(|s| s.name == "fan.out").unwrap();
    for t in 0..4 {
        let wo = spans
            .iter()
            .find(|s| s.name == format!("worker{t}.outer"))
            .unwrap();
        let wi = spans
            .iter()
            .find(|s| s.name == format!("worker{t}.inner"))
            .unwrap();
        // Per-thread nesting: depth restarts at 0 on each new thread and
        // the inner span lies within the outer one on the same tid.
        assert_eq!(wo.depth, 0);
        assert_eq!(wi.depth, 1);
        assert_eq!(wo.tid, wi.tid);
        assert!(wo.encloses(wi));
        // All worker activity falls inside the parent's fan.out window
        // (same registry epoch), despite running on different threads.
        assert!(outer.encloses(wo));
        assert_ne!(outer.tid, wo.tid);
    }
    // Four workers means four distinct thread ids besides the parent's.
    let tids: std::collections::HashSet<u64> = spans.iter().map(|s| s.tid).collect();
    assert_eq!(tids.len(), 5);
}
