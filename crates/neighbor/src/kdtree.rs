//! k-d tree neighbor search — the classic `O(N log N)` comparator.
//!
//! The paper's footnote 1 notes that k-d-tree searchers have better
//! asymptotic complexity than brute force but limited parallelism (both
//! construction and traversal are pointer-chasing), which is why Crescent
//! [17] had to split trees to tame their memory irregularity. We implement
//! the standard median-split tree so the benchmark harness can show that
//! trade-off: far fewer distance evaluations, far deeper sequential chains.

use edgepc_geom::{OpCounts, Point3, PointCloud};

use crate::{validate_search_args, NeighborResult, NeighborSearcher};

const NO_CHILD: i32 = -1;

#[derive(Debug, Clone, Copy)]
struct Node {
    point: u32,
    axis: u8,
    left: i32,
    right: i32,
}

/// A median-split k-d tree over a point cloud.
///
/// Build once with [`KdTree::build`], then run [`KdTree::knn`] or
/// [`KdTree::within_radius`] queries. The [`NeighborSearcher`] impl builds
/// a fresh tree per call and *includes the construction cost* in the
/// reported [`OpCounts`] — exactly the overhead the paper holds against
/// tree-based approaches.
///
/// # Example
///
/// ```
/// use edgepc_geom::{Point3, PointCloud};
/// use edgepc_neighbor::KdTree;
///
/// let cloud: PointCloud = (0..32).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&cloud);
/// let mut ops = Default::default();
/// // Excluding point 3 itself, the nearest neighbors of x = 3.1 are 4 and 2.
/// assert_eq!(tree.knn(Point3::new(3.1, 0.0, 0.0), 2, Some(3), &mut ops), vec![4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Point3>,
    root: i32,
    build_ops: OpCounts,
}

impl KdTree {
    /// Builds a tree over the points of `cloud` by recursive median split.
    ///
    /// # Panics
    ///
    /// Panics if the cloud is empty.
    pub fn build(cloud: &PointCloud) -> Self {
        assert!(
            !cloud.is_empty(),
            "cannot build a k-d tree over an empty cloud"
        );
        let points = cloud.points().to_vec();
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let mut build_ops = OpCounts::ZERO;
        let root = Self::build_rec(&points, &mut order, 0, &mut nodes, &mut build_ops);
        // Construction touches each level once; depth ~log N sequential
        // rounds, each with O(N) median-partition comparisons.
        build_ops.seq_rounds = (points.len().max(2) as f64).log2().ceil() as u64;
        KdTree {
            nodes,
            points,
            root,
            build_ops,
        }
    }

    fn build_rec(
        points: &[Point3],
        order: &mut [u32],
        depth: u32,
        nodes: &mut Vec<Node>,
        ops: &mut OpCounts,
    ) -> i32 {
        if order.is_empty() {
            return NO_CHILD;
        }
        let axis = (depth % 3) as usize;
        let mid = order.len() / 2;
        order.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        ops.cmp += order.len() as u64;
        let point = order[mid];
        let (lo, rest) = order.split_at_mut(mid);
        let (_, hi) = rest.split_at_mut(1);
        let left = Self::build_rec(points, lo, depth + 1, nodes, ops);
        let right = Self::build_rec(points, hi, depth + 1, nodes, ops);
        nodes.push(Node {
            point,
            axis: axis as u8,
            left,
            right,
        });
        (nodes.len() - 1) as i32
    }

    /// Operation counts of building this tree.
    pub fn build_ops(&self) -> OpCounts {
        self.build_ops
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the tree is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the indices of the `k` nearest points to `query`, nearest
    /// first, optionally excluding one index (`exclude`, for
    /// self-exclusion). Distance evaluations and node visits are
    /// accumulated into `ops`.
    pub fn knn(
        &self,
        query: Point3,
        k: usize,
        exclude: Option<usize>,
        ops: &mut OpCounts,
    ) -> Vec<usize> {
        let mut best: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
        self.knn_rec(self.root, query, k, exclude, &mut best, ops);
        best.into_iter().map(|(_, i)| i as usize).collect()
    }

    fn knn_rec(
        &self,
        node: i32,
        query: Point3,
        k: usize,
        exclude: Option<usize>,
        best: &mut Vec<(f32, u32)>,
        ops: &mut OpCounts,
    ) {
        if node == NO_CHILD {
            return;
        }
        let n = self.nodes[node as usize];
        let p = self.points[n.point as usize];
        ops.dist3 += 1;
        ops.cmp += 1;
        let d = query.distance_squared(p);
        if exclude != Some(n.point as usize) {
            let pos = best.partition_point(|&(bd, _)| bd <= d);
            if pos < k {
                best.insert(pos, (d, n.point));
                best.truncate(k);
            }
        }
        let axis = n.axis as usize;
        let diff = query[axis] - p[axis];
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.knn_rec(near, query, k, exclude, best, ops);
        // Prune the far side unless the splitting plane is closer than the
        // current k-th best.
        let worst = best.last().map_or(f32::INFINITY, |&(d, _)| d);
        if best.len() < k || diff * diff < worst {
            self.knn_rec(far, query, k, exclude, best, ops);
        }
    }

    /// Returns all indices within squared distance `radius_squared` of
    /// `query` (candidate order unspecified), excluding `exclude`.
    pub fn within_radius(
        &self,
        query: Point3,
        radius_squared: f32,
        exclude: Option<usize>,
        ops: &mut OpCounts,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        self.radius_rec(self.root, query, radius_squared, exclude, &mut out, ops);
        out
    }

    fn radius_rec(
        &self,
        node: i32,
        query: Point3,
        r2: f32,
        exclude: Option<usize>,
        out: &mut Vec<usize>,
        ops: &mut OpCounts,
    ) {
        if node == NO_CHILD {
            return;
        }
        let n = self.nodes[node as usize];
        let p = self.points[n.point as usize];
        ops.dist3 += 1;
        if query.distance_squared(p) <= r2 && exclude != Some(n.point as usize) {
            out.push(n.point as usize);
        }
        let axis = n.axis as usize;
        let diff = query[axis] - p[axis];
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.radius_rec(near, query, r2, exclude, out, ops);
        ops.cmp += 1;
        if diff * diff <= r2 {
            self.radius_rec(far, query, r2, exclude, out, ops);
        }
    }
}

impl NeighborSearcher for KdTree {
    fn name(&self) -> &'static str {
        "kdtree"
    }

    /// Builds a tree over `cloud` and answers all queries; construction
    /// cost is included. Traversals contribute a deep sequential chain
    /// (`log^2 N`-ish) reflecting their limited GPU parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= cloud.len()`, or a query is out of range.
    fn search(&self, cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborResult {
        validate_search_args(cloud, queries, k);
        let tree = KdTree::build(cloud);
        let mut ops = tree.build_ops();
        let points = cloud.points();
        let neighbors: Vec<Vec<usize>> = queries
            .iter()
            .map(|&q| {
                let mut got = tree.knn(points[q], k, Some(q), &mut ops);
                if let Some(&first) = got.first() {
                    while got.len() < k {
                        got.push(first);
                    }
                }
                got
            })
            .collect();
        // Pointer-chasing traversal: the paper's argument against trees on
        // GPUs. Model each query's traversal as a sequential chain of tree
        // depth, with queries parallel across lanes.
        let depth = (cloud.len().max(2) as f64).log2().ceil() as u64;
        ops.seq_rounds += 3 * depth;
        NeighborResult { neighbors, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteKnn;

    fn scattered(n: usize) -> PointCloud {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        (0..n)
            .map(|_| Point3::new(next(), next(), next()))
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let cloud = scattered(200);
        let queries: Vec<usize> = (0..200).step_by(7).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, 5);
        let tree = KdTree::build(&cloud).search(&cloud, &queries, 5);
        for (a, b) in tree.neighbors.iter().zip(&exact.neighbors) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tree_does_far_fewer_distance_evals() {
        let cloud = scattered(1000);
        let queries: Vec<usize> = (0..1000).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, 8);
        let tree = KdTree::build(&cloud).search(&cloud, &queries, 8);
        assert!(
            tree.ops.dist3 < exact.ops.dist3 / 3,
            "tree {} vs brute {}",
            tree.ops.dist3,
            exact.ops.dist3
        );
        // ... at the price of a deeper sequential chain.
        assert!(tree.ops.seq_rounds > exact.ops.seq_rounds);
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let cloud = scattered(300);
        let tree = KdTree::build(&cloud);
        let q = cloud.point(17);
        let r2 = 0.05f32;
        let mut ops = OpCounts::ZERO;
        let mut got = tree.within_radius(q, r2, Some(17), &mut ops);
        got.sort_unstable();
        let mut want: Vec<usize> = cloud
            .iter()
            .enumerate()
            .filter(|&(j, p)| j != 17 && q.distance_squared(p) <= r2)
            .map(|(j, _)| j)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_on_duplicate_points() {
        let pts = vec![Point3::ORIGIN; 5]
            .into_iter()
            .chain([Point3::splat(1.0)])
            .collect::<Vec<_>>();
        let cloud = PointCloud::from_points(pts);
        let tree = KdTree::build(&cloud);
        let mut ops = OpCounts::ZERO;
        let got = tree.knn(Point3::ORIGIN, 3, Some(0), &mut ops);
        assert_eq!(got.len(), 3);
        assert!(!got.contains(&0));
        assert!(!got.contains(&5), "far point must not beat duplicates");
    }

    #[test]
    fn build_ops_are_n_log_n_ish() {
        let cloud = scattered(1024);
        let tree = KdTree::build(&cloud);
        let ops = tree.build_ops();
        // Each of ~log2(1024)=10 levels partitions ~1024 elements.
        assert!(ops.cmp >= 1024);
        assert!(ops.cmp < 1024 * 30);
    }

    #[test]
    fn single_point_tree() {
        let cloud = PointCloud::from_points(vec![Point3::splat(2.0)]);
        let tree = KdTree::build(&cloud);
        let mut ops = OpCounts::ZERO;
        assert_eq!(tree.knn(Point3::ORIGIN, 1, None, &mut ops), vec![0]);
        assert_eq!(tree.len(), 1);
        assert!(!tree.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty cloud")]
    fn empty_build_panics() {
        let _ = KdTree::build(&PointCloud::new());
    }
}
