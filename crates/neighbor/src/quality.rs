//! Shared approximation-quality accounting for neighbor search.
//!
//! One definition serves every consumer — the Fig. 6 harness, the Fig. 15a
//! sweep, and the online auditors of [`crate::audit`] — so the false
//! neighbor ratio and recall@k can never drift apart: they are two views of
//! the same count, `recall@k = 1 − false_neighbor_ratio`.

use std::collections::HashSet;

/// Aggregated neighbor-quality counts from comparing an approximate search
/// result against the exact one, query by query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborQuality {
    /// Number of queries compared.
    pub queries: usize,
    /// Total neighbors the approximate searcher reported (`queries × k`
    /// when every list is full).
    pub reported: usize,
    /// Reported neighbors the exact searcher does *not* list.
    pub false_neighbors: usize,
}

impl NeighborQuality {
    /// The paper's false-neighbor ratio (Fig. 6): the fraction of reported
    /// neighbors that are false, over all queries. 0.0 = perfect.
    pub fn false_neighbor_ratio(&self) -> f64 {
        self.false_neighbors as f64 / self.reported as f64
    }

    /// Recall@k, the complement view: the fraction of reported neighbors
    /// that the exact searcher agrees with (`1 − false_neighbor_ratio`).
    pub fn recall_at_k(&self) -> f64 {
        1.0 - self.false_neighbor_ratio()
    }

    /// Folds another comparison's counts into this one.
    pub fn merge(&mut self, other: NeighborQuality) {
        self.queries += other.queries;
        self.reported += other.reported;
        self.false_neighbors += other.false_neighbors;
    }
}

/// Compares approximate neighbor lists against exact ones and returns the
/// aggregated counts. Membership is order-independent within each list;
/// padding duplicates in `approx` are counted once each, matching the
/// ratio's original definition.
///
/// # Panics
///
/// Panics if the two results have different query counts, or are empty.
pub fn neighbor_quality(approx: &[Vec<usize>], exact: &[Vec<usize>]) -> NeighborQuality {
    assert_eq!(approx.len(), exact.len(), "query counts differ");
    assert!(!approx.is_empty(), "no queries");
    let mut q = NeighborQuality {
        queries: approx.len(),
        reported: 0,
        false_neighbors: 0,
    };
    for (a, e) in approx.iter().zip(exact) {
        let truth: HashSet<usize> = e.iter().copied().collect();
        for n in a {
            q.reported += 1;
            if !truth.contains(n) {
                q.false_neighbors += 1;
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_counts_and_ratios_agree() {
        let approx = vec![vec![1, 9], vec![3, 4]];
        let exact = vec![vec![1, 2], vec![3, 4]];
        let q = neighbor_quality(&approx, &exact);
        assert_eq!(q.queries, 2);
        assert_eq!(q.reported, 4);
        assert_eq!(q.false_neighbors, 1);
        assert_eq!(q.false_neighbor_ratio(), 0.25);
        assert_eq!(q.recall_at_k(), 0.75);
    }

    #[test]
    fn recall_is_complement_of_fnr() {
        let approx = vec![vec![5, 6, 7]];
        let exact = vec![vec![7, 8, 9]];
        let q = neighbor_quality(&approx, &exact);
        assert!((q.recall_at_k() + q.false_neighbor_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = neighbor_quality(&[vec![1]], &[vec![1]]);
        let b = neighbor_quality(&[vec![2], vec![3]], &[vec![9], vec![3]]);
        a.merge(b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.reported, 3);
        assert_eq!(a.false_neighbors, 1);
    }
}
