//! Neighbor-search stages (paper Sec. 5.2).
//!
//! After sampling, every point-cloud CNN gathers a local neighborhood for
//! each (sampled) point. This crate implements both the state-of-the-art
//! searchers the paper profiles and the EdgePC approximation:
//!
//! * [`BruteKnn`] — exact k-nearest-neighbors by full scan, the `O(N^2)`
//!   SOTA kernel of Sec. 5.2.1,
//! * [`BallQuery`] — fixed-radius search with padding, PointNet++'s default,
//! * [`KdTree`] — the `O(N log N)` tree comparator the paper footnotes
//!   (efficient sequentially, but with limited parallelism),
//! * [`GridSearcher`] — the cell-hash comparator used by prior grid-based
//!   works ([22, 26, 39, 50] in the paper),
//! * [`MortonWindowSearcher`] — the paper's contribution: approximate the
//!   neighbor set with the best `k` of a window of `W` consecutive points
//!   in Morton order (Sec. 5.2.2),
//! * [`false_neighbor_ratio`] — the quality metric of Fig. 6/11/15a.
//!
//! All searchers exclude the query point itself from its neighbor list,
//! matching the paper's worked example (Fig. 10, where the neighbors of
//! `P2` are `{P0, P1, P4}`).
//!
//! # Example
//!
//! ```
//! use edgepc_geom::{Point3, PointCloud};
//! use edgepc_neighbor::{BruteKnn, MortonWindowSearcher, NeighborSearcher,
//!                       false_neighbor_ratio};
//!
//! let cloud: PointCloud = (0..64)
//!     .map(|i| Point3::new((i % 8) as f32, (i / 8) as f32, 0.0))
//!     .collect();
//! let queries: Vec<usize> = (0..64).collect();
//! let exact = BruteKnn::new().search(&cloud, &queries, 4);
//! let approx = MortonWindowSearcher::new(16, 10).search(&cloud, &queries, 4);
//! let fnr = false_neighbor_ratio(&approx.neighbors, &exact.neighbors);
//! assert!(fnr < 0.9);
//! // The window searcher does a small constant amount of work per query.
//! assert!(approx.ops.dist3 < exact.ops.dist3);
//! ```

pub mod audit;
pub mod ballquery;
pub mod brute;
pub mod grid;
pub mod kdtree;
pub mod quality;
pub mod window;

pub use ballquery::BallQuery;
pub use brute::BruteKnn;
pub use grid::GridSearcher;
pub use kdtree::KdTree;
pub use quality::{neighbor_quality, NeighborQuality};
pub use window::MortonWindowSearcher;

use edgepc_geom::{OpCounts, PointCloud};

/// The outcome of a neighbor-search stage.
#[derive(Debug, Clone)]
pub struct NeighborResult {
    /// `neighbors[q]` holds the neighbor indices (into the candidate cloud)
    /// of the `q`-th query, exactly `k` entries each (padded by repetition
    /// where a searcher finds fewer).
    pub neighbors: Vec<Vec<usize>>,
    /// Operation counts of the search.
    pub ops: OpCounts,
}

/// A neighbor-search strategy over the points of a single cloud.
pub trait NeighborSearcher {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// For each query (an index into `cloud`), returns the indices of `k`
    /// neighbors among the points of `cloud`, excluding the query itself.
    ///
    /// # Panics
    ///
    /// Implementations panic if `k == 0`, `k >= cloud.len()`, or any query
    /// index is out of range.
    fn search(&self, cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborResult;
}

pub(crate) fn validate_search_args(cloud: &PointCloud, queries: &[usize], k: usize) {
    assert!(k > 0, "k must be positive");
    assert!(
        k < cloud.len(),
        "k = {k} must be smaller than the cloud ({} points)",
        cloud.len()
    );
    assert!(
        queries.iter().all(|&q| q < cloud.len()),
        "query index out of range"
    );
}

/// The paper's false-neighbor ratio: the fraction of approximate neighbors
/// that the exact searcher does *not* report, averaged over all queries
/// (Fig. 6). 0.0 means the approximation is perfect; 1.0 means every
/// reported neighbor is false.
///
/// Convenience wrapper over [`neighbor_quality`], which also exposes
/// recall@k and the raw counts.
///
/// # Panics
///
/// Panics if the two results have different query counts, or are empty.
pub fn false_neighbor_ratio(approx: &[Vec<usize>], exact: &[Vec<usize>]) -> f64 {
    neighbor_quality(approx, exact).false_neighbor_ratio()
}

/// Top-k selection by squared distance out of an iterator of
/// `(distance, index)` candidates, used by several searchers. Returns
/// exactly `k` entries when at least one candidate exists, padding by
/// repeating the nearest; comparison count is reported through `cmp`.
pub(crate) fn select_k_nearest(
    candidates: impl Iterator<Item = (f32, usize)>,
    k: usize,
    cmp: &mut u64,
) -> Vec<usize> {
    let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
    for (d, i) in candidates {
        *cmp += 1;
        let pos = best.partition_point(|&(bd, _)| bd <= d);
        if pos < k {
            best.insert(pos, (d, i));
            best.truncate(k);
        }
    }
    let mut out: Vec<usize> = best.iter().map(|&(_, i)| i).collect();
    if let Some(&first) = out.first() {
        while out.len() < k {
            out.push(first);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgepc_geom::Point3;

    #[test]
    fn fnr_zero_for_identical_results() {
        let a = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(false_neighbor_ratio(&a, &a), 0.0);
    }

    #[test]
    fn fnr_counts_misses() {
        let approx = vec![vec![1, 9], vec![3, 4]];
        let exact = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(false_neighbor_ratio(&approx, &exact), 0.25);
    }

    #[test]
    fn fnr_order_independent() {
        let approx = vec![vec![2, 1]];
        let exact = vec![vec![1, 2]];
        assert_eq!(false_neighbor_ratio(&approx, &exact), 0.0);
    }

    #[test]
    #[should_panic(expected = "query counts differ")]
    fn fnr_mismatched_lengths_panic() {
        let _ = false_neighbor_ratio(&[vec![1]], &[vec![1], vec![2]]);
    }

    #[test]
    fn select_k_nearest_orders_and_pads() {
        let mut cmp = 0;
        let cands = [(3.0, 30), (1.0, 10), (2.0, 20)];
        let got = select_k_nearest(cands.iter().copied(), 2, &mut cmp);
        assert_eq!(got, vec![10, 20]);
        let padded = select_k_nearest([(5.0, 50)].iter().copied(), 3, &mut cmp);
        assert_eq!(padded, vec![50, 50, 50]);
        assert!(cmp > 0);
    }

    #[test]
    fn validate_rejects_bad_args() {
        let cloud: PointCloud = (0..4).map(|i| Point3::splat(i as f32)).collect();
        validate_search_args(&cloud, &[0, 3], 2); // fine
        let r = std::panic::catch_unwind(|| validate_search_args(&cloud, &[0], 4));
        assert!(r.is_err(), "k == len must be rejected");
        let r = std::panic::catch_unwind(|| validate_search_args(&cloud, &[9], 1));
        assert!(r.is_err(), "out-of-range query must be rejected");
    }
}
