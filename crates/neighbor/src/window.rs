//! The Morton index-window neighbor searcher — the paper's contribution
//! (Sec. 5.2.2, Fig. 10b).

use edgepc_geom::{OpCounts, PointCloud};
use edgepc_morton::{Structurized, Structurizer};

use crate::{select_k_nearest, validate_search_args, NeighborResult, NeighborSearcher};

/// Queries per parallel chunk. Fixed (never derived from the worker
/// count) so results are deterministic for any thread budget.
const QUERY_CHUNK: usize = 64;

/// Approximate neighbor search on a Morton-structurized cloud: the `k`
/// neighbors of the point at sorted position `j` are taken from the index
/// window `{j - W/2, ..., j + W/2}`, reducing per-query work from `O(N)` to
/// `O(W)`.
///
/// With `W == k` the search degenerates to pure index picking (no distance
/// computation at all); larger windows spend `W` distance evaluations to
/// choose the best `k`, trading latency for a lower false-neighbor ratio —
/// the knob of Fig. 15a.
///
/// # Example
///
/// ```
/// use edgepc_geom::{Point3, PointCloud};
/// use edgepc_neighbor::{MortonWindowSearcher, NeighborSearcher};
///
/// // The paper's Fig. 10(b): with W = k + 1 = 4 the window around P2
/// // selects {P1, P4, P0}.
/// let cloud = PointCloud::from_points(vec![
///     Point3::new(3.0, 6.0, 2.0),
///     Point3::new(1.0, 3.0, 1.0),
///     Point3::new(4.0, 3.0, 2.0),
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(5.0, 1.0, 0.0),
/// ]);
/// let r = MortonWindowSearcher::new(4, 10).search(&cloud, &[2], 3);
/// let mut got = r.neighbors[0].clone();
/// got.sort_unstable();
/// assert_eq!(got, vec![0, 1, 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MortonWindowSearcher {
    window: usize,
    structurizer: Structurizer,
}

impl MortonWindowSearcher {
    /// Creates a window searcher with search window `window` (`W` in the
    /// paper) and the given Morton grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `bits_per_axis` is out of range for
    /// [`Structurizer::new`].
    pub fn new(window: usize, bits_per_axis: u32) -> Self {
        assert!(window > 0, "window must be positive");
        MortonWindowSearcher {
            window,
            structurizer: Structurizer::new(bits_per_axis),
        }
    }

    /// The degenerate configuration `W = k`: pure index picking with zero
    /// distance work, at the paper's 32-bit Morton resolution.
    pub fn degenerate(k: usize) -> Self {
        MortonWindowSearcher {
            window: k,
            structurizer: Structurizer::paper_default(),
        }
    }

    /// The search window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Searches on an existing structurization — the reuse path of
    /// Sec. 5.2.3, where the sampler's Morton sort is reused "without any
    /// extra overhead". Both `query_positions` and the returned neighbor
    /// lists are *sorted positions* into `s.cloud()`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= s.cloud().len()`, `k > window`, or a query
    /// position is out of range.
    pub fn search_structurized(
        &self,
        s: &Structurized,
        query_positions: &[usize],
        k: usize,
    ) -> NeighborResult {
        let n = s.cloud().len();
        validate_search_args(s.cloud(), query_positions, k);
        assert!(
            k <= self.window,
            "k = {k} exceeds the search window W = {}",
            self.window
        );
        let points = s.cloud().points();
        let half = self.window / 2;
        let mut span = edgepc_trace::span("window.search", "search");
        let mut ops = OpCounts::ZERO;

        // Parallel across fixed 64-query chunks; each chunk carries its
        // own op tally and the tallies fold in chunk order, so both the
        // neighbor lists and the counts are thread-count independent.
        let per_chunk = edgepc_par::par_chunk_map(query_positions, QUERY_CHUNK, |_, qs| {
            let mut dist3 = 0u64;
            let mut cmp = 0u64;
            let lists: Vec<Vec<usize>> = qs
                .iter()
                .map(|&j| {
                    // Keep a full W+1-wide span even at the array
                    // boundaries by shifting the window inward.
                    let lo = j.saturating_sub(half);
                    let hi = (lo + self.window).min(n - 1);
                    let lo = hi.saturating_sub(self.window);
                    let cand_count = hi - lo; // excludes the query itself
                    if cand_count <= k {
                        // Degenerate pick: all window positions, no
                        // distances.
                        let mut out: Vec<usize> = (lo..=hi).filter(|&p| p != j).collect();
                        if let Some(&first) = out.first() {
                            while out.len() < k {
                                out.push(first);
                            }
                        }
                        out
                    } else {
                        dist3 += cand_count as u64;
                        select_k_nearest(
                            (lo..=hi)
                                .filter(|&p| p != j)
                                .map(|p| (points[j].distance_squared(points[p]), p)),
                            k,
                            &mut cmp,
                        )
                    }
                })
                .collect();
            (lists, dist3, cmp)
        });
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(query_positions.len());
        for (mut lists, dist3, cmp) in per_chunk {
            neighbors.append(&mut lists);
            ops.dist3 += dist3;
            ops.cmp += cmp;
        }
        // Fully parallel across queries; per-query top-k over W elements.
        ops.seq_rounds = (self.window.max(2) as f64).log2().ceil() as u64;
        span.set_ops(ops);
        // Close the stage span before any audit work: the sampled exact
        // re-search is measurement overhead, not pipeline cost.
        drop(span);
        crate::audit::maybe_audit_search(s, query_positions, k, &neighbors);
        NeighborResult { neighbors, ops }
    }
}

impl NeighborSearcher for MortonWindowSearcher {
    fn name(&self) -> &'static str {
        "morton-window"
    }

    /// Structurizes `cloud` (cost included — use
    /// [`MortonWindowSearcher::search_structurized`] to reuse a sampler's
    /// sort for free) and answers queries through the index window,
    /// returning neighbor indices in the *original* cloud order.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= cloud.len()`, `k > window`, or a query is
    /// out of range.
    fn search(&self, cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborResult {
        validate_search_args(cloud, queries, k);
        let s = self.structurizer.structurize(cloud);
        let inv = s.inverse_permutation();
        let query_positions: Vec<usize> = queries.iter().map(|&q| inv[q]).collect();
        let mut result = self.search_structurized(&s, &query_positions, k);
        for list in &mut result.neighbors {
            for p in list.iter_mut() {
                *p = s.permutation()[*p];
            }
        }
        result.ops += s.ops();
        NeighborResult {
            neighbors: result.neighbors,
            ops: result.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{false_neighbor_ratio, BruteKnn};
    use edgepc_geom::Point3;
    use edgepc_morton::VoxelGrid;

    fn paper_points() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(3.0, 6.0, 2.0),
            Point3::new(1.0, 3.0, 1.0),
            Point3::new(4.0, 3.0, 2.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(5.0, 1.0, 0.0),
        ])
    }

    fn scattered(n: usize) -> PointCloud {
        let mut state = 0x0dd0_c0de_1234_5678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        (0..n)
            .map(|_| Point3::new(next(), next(), next()))
            .collect()
    }

    #[test]
    fn paper_fig10b_window_selection() {
        // On the unit grid the sorted order is {3, 1, 4, 2, 0}; P2 sits at
        // sorted position 3 and the W = 4 window selects {P1, P4, P0}.
        let cloud = paper_points();
        let grid = VoxelGrid::with_cell_size(Point3::ORIGIN, 1.0, 10);
        let s = Structurizer::new(10).structurize_with_grid(&cloud, grid);
        let searcher = MortonWindowSearcher::new(4, 10);
        let r = searcher.search_structurized(&s, &[3], 3);
        // Map sorted positions back to original indices.
        let mut got: Vec<usize> = r.neighbors[0].iter().map(|&p| s.permutation()[p]).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4]);
    }

    #[test]
    fn degenerate_window_uses_no_distances() {
        let cloud = scattered(256);
        let queries: Vec<usize> = (0..256).collect();
        let s = Structurizer::paper_default().structurize(&cloud);
        let r = MortonWindowSearcher::degenerate(8).search_structurized(&s, &queries, 8);
        assert_eq!(r.ops.dist3, 0, "W = k is a pure index pick");
        for list in &r.neighbors {
            assert_eq!(list.len(), 8);
        }
    }

    #[test]
    fn wider_window_costs_w_distances_per_query() {
        let cloud = scattered(512);
        let queries: Vec<usize> = (0..512).collect();
        let s = Structurizer::paper_default().structurize(&cloud);
        let r = MortonWindowSearcher::new(32, 10).search_structurized(&s, &queries, 8);
        assert_eq!(r.ops.dist3, 512 * 32);
    }

    #[test]
    fn fnr_decreases_as_window_grows() {
        // The Fig. 15a trend: widening W monotonically reduces the false
        // neighbor ratio.
        let cloud = scattered(512);
        let queries: Vec<usize> = (0..512).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, 8);
        let mut last = 1.1f64;
        for w in [8usize, 32, 128, 1022] {
            let r = MortonWindowSearcher::new(w, 10).search(&cloud, &queries, 8);
            let fnr = false_neighbor_ratio(&r.neighbors, &exact.neighbors);
            assert!(
                fnr <= last + 0.02,
                "window {w}: fnr {fnr} should not exceed previous {last}"
            );
            last = fnr;
        }
        // A window spanning the entire cloud is exact.
        assert!(last < 1e-9, "full window must be exact, got {last}");
    }

    #[test]
    fn window_search_much_cheaper_than_brute() {
        let cloud = scattered(2048);
        let queries: Vec<usize> = (0..2048).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, 16);
        let approx = MortonWindowSearcher::new(64, 10).search(&cloud, &queries, 16);
        // O(W) vs O(N) per query.
        assert!(approx.ops.dist3 * 8 < exact.ops.dist3);
    }

    #[test]
    fn boundary_queries_get_full_windows() {
        let cloud = scattered(64);
        let s = Structurizer::paper_default().structurize(&cloud);
        let r = MortonWindowSearcher::new(16, 10).search_structurized(&s, &[0, 63], 8);
        for list in &r.neighbors {
            assert_eq!(list.len(), 8);
            let unique: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(
                unique.len(),
                8,
                "boundary windows are shifted, not truncated"
            );
        }
    }

    #[test]
    fn trait_path_maps_back_to_original_indices() {
        let cloud = scattered(128);
        let queries: Vec<usize> = (0..128).step_by(3).collect();
        let r = MortonWindowSearcher::new(16, 10).search(&cloud, &queries, 4);
        for (qi, list) in queries.iter().zip(&r.neighbors) {
            for &n in list {
                assert!(n < 128);
                assert_ne!(n, *qi, "self must be excluded");
            }
        }
        // Trait path pays for structurization.
        assert_eq!(r.ops.morton_encodes, 128);
    }

    #[test]
    #[should_panic(expected = "exceeds the search window")]
    fn k_larger_than_window_panics() {
        let cloud = scattered(64);
        let s = Structurizer::paper_default().structurize(&cloud);
        let _ = MortonWindowSearcher::new(4, 10).search_structurized(&s, &[0], 8);
    }
}
