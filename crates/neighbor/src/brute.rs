//! Brute-force exact k-NN — the SOTA kernel the paper profiles.

use edgepc_geom::{OpCounts, PointCloud};

use crate::{select_k_nearest, validate_search_args, NeighborResult, NeighborSearcher};

/// Exact k-nearest-neighbor search by scanning every candidate for every
/// query — the distance-matrix approach of paper Sec. 5.2.1, `O(N)` per
/// query and `O(N^2)` for all-points queries. Fully parallel across
/// queries, which is why GPU point-cloud stacks use it despite the
/// complexity (the paper's footnote 1 explains why k-d trees don't win on
/// GPUs).
///
/// # Example
///
/// ```
/// use edgepc_geom::{Point3, PointCloud};
/// use edgepc_neighbor::{BruteKnn, NeighborSearcher};
///
/// // The paper's Fig. 10(a): the 3 nearest neighbors of P2 are P4, P0, P1.
/// let cloud = PointCloud::from_points(vec![
///     Point3::new(3.0, 6.0, 2.0),
///     Point3::new(1.0, 3.0, 1.0),
///     Point3::new(4.0, 3.0, 2.0),
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(5.0, 1.0, 0.0),
/// ]);
/// let r = BruteKnn::new().search(&cloud, &[2], 3);
/// assert_eq!(r.neighbors[0], vec![4, 0, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BruteKnn;

impl BruteKnn {
    /// Creates the exact searcher.
    pub fn new() -> Self {
        BruteKnn
    }
}

impl NeighborSearcher for BruteKnn {
    fn name(&self) -> &'static str {
        "knn"
    }

    /// Finds the `k` nearest candidates of each query (self excluded),
    /// nearest first; ties broken by lower index.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= cloud.len()`, or a query is out of range.
    fn search(&self, cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborResult {
        validate_search_args(cloud, queries, k);
        let mut span = edgepc_trace::span("knn.search", "search");
        let points = cloud.points();
        let mut ops = OpCounts::ZERO;
        // Parallel across fixed 16-query chunks (each query is O(N), so
        // chunks are coarse enough already); comparison tallies fold in
        // chunk order for thread-count-independent counts.
        let per_chunk = edgepc_par::par_chunk_map(queries, 16, |_, qs| {
            let mut cmp = 0u64;
            let lists: Vec<Vec<usize>> = qs
                .iter()
                .map(|&q| {
                    let qp = points[q];
                    select_k_nearest(
                        points
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != q)
                            .map(|(j, &p)| (qp.distance_squared(p), j)),
                        k,
                        &mut cmp,
                    )
                })
                .collect();
            (lists, cmp)
        });
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(queries.len());
        for (mut lists, cmp) in per_chunk {
            neighbors.append(&mut lists);
            ops.cmp += cmp;
        }
        ops.dist3 = (queries.len() * (points.len() - 1)) as u64;
        // Parallel across queries; per-query scan reduces in ~log N depth.
        ops.seq_rounds = (points.len().max(2) as f64).log2().ceil() as u64;
        span.set_ops(ops);
        NeighborResult { neighbors, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgepc_geom::Point3;

    fn paper_points() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(3.0, 6.0, 2.0),
            Point3::new(1.0, 3.0, 1.0),
            Point3::new(4.0, 3.0, 2.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(5.0, 1.0, 0.0),
        ])
    }

    #[test]
    fn paper_fig10a_knn_for_p2() {
        // Squared distances from P2: P0=10, P1=10, P3=29, P4=9.
        let r = BruteKnn::new().search(&paper_points(), &[2], 3);
        assert_eq!(r.neighbors[0], vec![4, 0, 1]);
    }

    #[test]
    fn excludes_self() {
        let r = BruteKnn::new().search(&paper_points(), &[0, 1, 2, 3, 4], 2);
        for (q, ns) in r.neighbors.iter().enumerate() {
            assert!(!ns.contains(&q), "query {q} listed itself");
            assert_eq!(ns.len(), 2);
        }
    }

    #[test]
    fn nearest_first_ordering() {
        let cloud: PointCloud = (0..10).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let r = BruteKnn::new().search(&cloud, &[0], 3);
        assert_eq!(r.neighbors[0], vec![1, 2, 3]);
    }

    #[test]
    fn op_counts_are_quadratic_for_all_queries() {
        let cloud: PointCloud = (0..50).map(|i| Point3::splat(i as f32)).collect();
        let queries: Vec<usize> = (0..50).collect();
        let r = BruteKnn::new().search(&cloud, &queries, 4);
        assert_eq!(r.ops.dist3, 50 * 49);
    }

    #[test]
    fn subset_queries_cost_proportionally_less() {
        let cloud: PointCloud = (0..50).map(|i| Point3::splat(i as f32)).collect();
        let r = BruteKnn::new().search(&cloud, &[0, 1, 2, 3, 4], 4);
        assert_eq!(r.ops.dist3, 5 * 49);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = BruteKnn::new().search(&paper_points(), &[0], 0);
    }
}
