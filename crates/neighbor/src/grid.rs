//! Uniform-grid (cell hash) neighbor search — the comparator used by the
//! grid-based prior works the paper discusses ([22, 26, 39, 50]).
//!
//! Points are binned into cubic cells; a k-NN query inspects expanding
//! shells of cells around the query's cell until the k-th best distance is
//! provably closed. Exact (not approximate), much cheaper than brute force
//! on well-distributed data, but its cost is data-dependent and its memory
//! access pattern irregular — the paper's argument for preferring the
//! Morton window approximation on edge GPUs.

use std::collections::HashMap;

use edgepc_geom::{OpCounts, Point3, PointCloud};

use crate::{validate_search_args, NeighborResult, NeighborSearcher};

/// Exact k-NN over a uniform cell grid.
///
/// # Example
///
/// ```
/// use edgepc_geom::{Point3, PointCloud};
/// use edgepc_neighbor::{BruteKnn, GridSearcher, NeighborSearcher};
///
/// let cloud: PointCloud = (0..100)
///     .map(|i| Point3::new((i % 10) as f32, (i / 10) as f32, 0.0))
///     .collect();
/// let grid = GridSearcher::new().search(&cloud, &[55], 4);
/// let brute = BruteKnn::new().search(&cloud, &[55], 4);
/// let mut a = grid.neighbors[0].clone();  a.sort_unstable();
/// let mut b = brute.neighbors[0].clone(); b.sort_unstable();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GridSearcher {
    cell_size: Option<f32>,
}

impl GridSearcher {
    /// Creates a grid searcher that auto-tunes its cell size so the
    /// expected occupancy per cell is a few points.
    pub fn new() -> Self {
        GridSearcher { cell_size: None }
    }

    /// Creates a grid searcher with an explicit cell edge length.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn with_cell_size(cell_size: f32) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        GridSearcher {
            cell_size: Some(cell_size),
        }
    }

    fn resolve_cell_size(&self, cloud: &PointCloud, k: usize) -> f32 {
        if let Some(c) = self.cell_size {
            return c;
        }
        let bb = cloud.bounding_box();
        let e = bb.extent();
        let volume = (e.x.max(1e-6) * e.y.max(1e-6) * e.z.max(1e-6)) as f64;
        // Aim for ~k points per cell so the first shell usually suffices.
        let target = (volume * k as f64 / cloud.len() as f64).cbrt() as f32;
        target.max(1e-6)
    }
}

fn cell_of(p: Point3, origin: Point3, cell: f32) -> (i32, i32, i32) {
    (
        ((p.x - origin.x) / cell).floor() as i32,
        ((p.y - origin.y) / cell).floor() as i32,
        ((p.z - origin.z) / cell).floor() as i32,
    )
}

impl NeighborSearcher for GridSearcher {
    fn name(&self) -> &'static str {
        "grid"
    }

    /// Bins the cloud and answers each query by shell expansion. Binning
    /// cost and candidate distance evaluations are both included in the
    /// reported counts.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= cloud.len()`, or a query is out of range.
    fn search(&self, cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborResult {
        validate_search_args(cloud, queries, k);
        let points = cloud.points();
        let origin = cloud.bounding_box().min();
        let cell = self.resolve_cell_size(cloud, k);

        let mut bins: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            bins.entry(cell_of(p, origin, cell))
                .or_default()
                .push(i as u32);
        }
        let mut ops = OpCounts::ZERO;
        ops.gathered_bytes = 16 * points.len() as u64; // binning pass
        ops.cmp += points.len() as u64;

        let neighbors: Vec<Vec<usize>> = queries
            .iter()
            .map(|&q| {
                let qp = points[q];
                let (cx, cy, cz) = cell_of(qp, origin, cell);
                let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
                let mut ring = 0i32;
                loop {
                    // Visit all cells on the Chebyshev shell of radius
                    // `ring`.
                    for dx in -ring..=ring {
                        for dy in -ring..=ring {
                            for dz in -ring..=ring {
                                if dx.abs().max(dy.abs()).max(dz.abs()) != ring {
                                    continue;
                                }
                                ops.cmp += 1;
                                let Some(ids) = bins.get(&(cx + dx, cy + dy, cz + dz)) else {
                                    continue;
                                };
                                for &j in ids {
                                    let j = j as usize;
                                    if j == q {
                                        continue;
                                    }
                                    ops.dist3 += 1;
                                    let d = qp.distance_squared(points[j]);
                                    let pos = best.partition_point(|&(bd, _)| bd <= d);
                                    if pos < k {
                                        best.insert(pos, (d, j));
                                        best.truncate(k);
                                    }
                                }
                            }
                        }
                    }
                    // A point in a farther shell is at least
                    // `ring * cell_size` away; stop when that bound cannot
                    // improve the current k-th best.
                    let bound = (ring as f32) * cell;
                    let worst = best.last().map_or(f32::INFINITY, |&(d, _)| d);
                    if best.len() == k && bound * bound > worst {
                        break;
                    }
                    ring += 1;
                    // Safety stop: the shell has outgrown the whole cloud.
                    if (ring as f32) * cell > cloud.bounding_box().max_extent() + 2.0 * cell {
                        break;
                    }
                }
                let mut out: Vec<usize> = best.into_iter().map(|(_, j)| j).collect();
                if let Some(&first) = out.first() {
                    while out.len() < k {
                        out.push(first);
                    }
                }
                out
            })
            .collect();
        ops.seq_rounds = 4; // bin (1 scatter round) + a few shell rounds
        NeighborResult { neighbors, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteKnn;

    fn scattered(n: usize) -> PointCloud {
        let mut state = 0xfeed_beef_cafe_f00du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        (0..n)
            .map(|_| Point3::new(next(), next(), next()))
            .collect()
    }

    #[test]
    fn matches_brute_force_everywhere() {
        let cloud = scattered(300);
        let queries: Vec<usize> = (0..300).collect();
        let grid = GridSearcher::new().search(&cloud, &queries, 6);
        let brute = BruteKnn::new().search(&cloud, &queries, 6);
        for (q, (a, b)) in grid.neighbors.iter().zip(&brute.neighbors).enumerate() {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn cheaper_than_brute_on_large_clouds() {
        let cloud = scattered(2000);
        let queries: Vec<usize> = (0..2000).collect();
        let grid = GridSearcher::new().search(&cloud, &queries, 8);
        let brute = BruteKnn::new().search(&cloud, &queries, 8);
        assert!(
            grid.ops.dist3 < brute.ops.dist3 / 2,
            "grid {} vs brute {}",
            grid.ops.dist3,
            brute.ops.dist3
        );
    }

    #[test]
    fn explicit_cell_size_works() {
        let cloud = scattered(100);
        let queries = [0usize, 50, 99];
        let grid = GridSearcher::with_cell_size(0.25).search(&cloud, &queries, 3);
        let brute = BruteKnn::new().search(&cloud, &queries, 3);
        for (a, b) in grid.neighbors.iter().zip(&brute.neighbors) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn handles_degenerate_coplanar_cloud() {
        // All z = 0: bounding-box volume guard must not blow up.
        let cloud: PointCloud = (0..64)
            .map(|i| Point3::new((i % 8) as f32, (i / 8) as f32, 0.0))
            .collect();
        let r = GridSearcher::new().search(&cloud, &[27], 4);
        assert_eq!(r.neighbors[0].len(), 4);
    }

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn bad_cell_size_panics() {
        let _ = GridSearcher::with_cell_size(-1.0);
    }
}
