//! Online quality auditing for the approximate window searcher.
//!
//! EdgePC trades exactness for speed; this module keeps the size of that
//! trade *observable in production runs* instead of only in offline
//! figure harnesses. When enabled, [`MortonWindowSearcher`] re-runs an
//! exact brute-force search for one in every `stride` queries it answers
//! and publishes the cumulative false-neighbor rate / recall@k to the
//! current [`edgepc_trace`] registry:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `audit.search.queries` | counter | queries audited so far |
//! | `audit.search.reported_neighbors` | counter | neighbors checked |
//! | `audit.search.false_neighbors` | counter | neighbors the exact search rejects |
//! | `audit.search.false_neighbor_rate` | gauge | cumulative Fig. 6 ratio |
//! | `audit.search.recall_at_k` | gauge | `1 −` the above |
//!
//! Auditing is **off by default** (`stride == 0`) and costs nothing when
//! off beyond one relaxed atomic load per search call. The audit's own
//! distance work is deliberately *not* added to the search's
//! [`OpCounts`](edgepc_geom::OpCounts) or spans — it is measurement
//! overhead, not pipeline work, and must not perturb the modeled cost.
//!
//! [`MortonWindowSearcher`]: crate::MortonWindowSearcher

use std::sync::atomic::{AtomicUsize, Ordering};

use edgepc_morton::Structurized;

use crate::quality::neighbor_quality;
use crate::select_k_nearest;

/// Process-global query-sampling stride; 0 disables auditing.
static QUERY_STRIDE: AtomicUsize = AtomicUsize::new(0);

/// Enables search auditing: every `stride`-th query of each
/// [`search_structurized`](crate::MortonWindowSearcher::search_structurized)
/// call is re-answered exactly and compared. `0` disables (the default).
pub fn set_search_audit_stride(stride: usize) {
    QUERY_STRIDE.store(stride, Ordering::Relaxed);
}

/// The currently configured query-sampling stride (0 = auditing off).
pub fn search_audit_stride() -> usize {
    QUERY_STRIDE.load(Ordering::Relaxed)
}

/// Audits the given window-search answer if auditing is enabled.
/// `approx[i]` must be the sorted-position neighbor list for
/// `query_positions[i]`, as produced inside `search_structurized`.
pub(crate) fn maybe_audit_search(
    s: &Structurized,
    query_positions: &[usize],
    k: usize,
    approx: &[Vec<usize>],
) {
    let stride = search_audit_stride();
    if stride == 0 || query_positions.is_empty() {
        return;
    }
    let points = s.cloud().points();
    let mut audited_approx: Vec<Vec<usize>> = Vec::new();
    let mut audited_exact: Vec<Vec<usize>> = Vec::new();
    let mut cmp_sink = 0u64; // audit work is not charged to pipeline ops
    for (qi, &j) in query_positions.iter().enumerate().step_by(stride) {
        let exact = select_k_nearest(
            (0..points.len())
                .filter(|&p| p != j)
                .map(|p| (points[j].distance_squared(points[p]), p)),
            k,
            &mut cmp_sink,
        );
        audited_exact.push(exact);
        audited_approx.push(approx[qi].clone());
    }
    let q = neighbor_quality(&audited_approx, &audited_exact);

    let reg = edgepc_trace::current_registry();
    reg.incr("audit.search.queries", q.queries as u64);
    reg.incr("audit.search.reported_neighbors", q.reported as u64);
    reg.incr("audit.search.false_neighbors", q.false_neighbors as u64);
    // Gauges hold the *cumulative* rate over everything this registry has
    // audited, so long runs converge instead of jittering per call.
    let reported = reg.counter("audit.search.reported_neighbors");
    let false_n = reg.counter("audit.search.false_neighbors");
    if reported > 0 {
        let fnr = false_n as f64 / reported as f64;
        reg.set_gauge("audit.search.false_neighbor_rate", fnr);
        reg.set_gauge("audit.search.recall_at_k", 1.0 - fnr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MortonWindowSearcher;
    use edgepc_geom::{Point3, PointCloud};
    use edgepc_morton::Structurizer;
    use edgepc_trace::with_local;

    fn scattered(n: usize) -> PointCloud {
        let mut state = 0x51ab_13f0_77aa_0e01u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((state >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        (0..n)
            .map(|_| Point3::new(next(), next(), next()))
            .collect()
    }

    /// The one test that toggles the process-global audit policy. Keeping
    /// the toggle confined to a single test avoids interference with the
    /// rest of the suite under parallel `cargo test`.
    #[test]
    fn audited_search_publishes_quality_metrics() {
        let cloud = scattered(512);
        let s = Structurizer::paper_default().structurize(&cloud);
        let queries: Vec<usize> = (0..512).collect();

        // Off by default: no audit counters appear.
        let (result, _) = with_local(|| {
            let r = MortonWindowSearcher::new(64, 10).search_structurized(&s, &queries, 8);
            let reg = edgepc_trace::current_registry();
            assert_eq!(reg.counter("audit.search.queries"), 0);
            assert!(reg.gauge("audit.search.recall_at_k").is_none());
            r
        });

        set_search_audit_stride(8);
        let ((), _) = with_local(|| {
            let audited = MortonWindowSearcher::new(64, 10).search_structurized(&s, &queries, 8);
            // Auditing must not change the answer or its charged ops.
            assert_eq!(audited.neighbors, result.neighbors);
            assert_eq!(audited.ops, result.ops);

            let reg = edgepc_trace::current_registry();
            assert_eq!(reg.counter("audit.search.queries"), 512 / 8);
            assert_eq!(reg.counter("audit.search.reported_neighbors"), 64 * 8);
            let fnr = reg.gauge("audit.search.false_neighbor_rate").unwrap();
            let recall = reg.gauge("audit.search.recall_at_k").unwrap();
            assert!((0.0..=1.0).contains(&fnr));
            assert!((fnr + recall - 1.0).abs() < 1e-12);
            // W = 64 over 512 scattered points is approximate but decent.
            assert!(recall > 0.3, "recall {recall} implausibly low");
        });
        set_search_audit_stride(0);
    }
}
