//! Ball query — fixed-radius neighbor search, PointNet++'s default.

use edgepc_geom::{OpCounts, PointCloud};

use crate::{validate_search_args, NeighborResult, NeighborSearcher};

/// Fixed-radius ("ball") neighbor search: return up to `k` candidates whose
/// squared distance to the query is at most `radius_squared`, in candidate
/// order, padding with the first hit when fewer than `k` fall inside — the
/// exact semantics of the PointNet++ CUDA kernel and of paper Fig. 10(a),
/// where `R = 11` (squared) selects `{P0, P1, P4}` for `P2`.
///
/// Like the brute k-NN, a full scan costs `O(N)` per query.
///
/// # Example
///
/// ```
/// use edgepc_geom::{Point3, PointCloud};
/// use edgepc_neighbor::{BallQuery, NeighborSearcher};
///
/// let cloud = PointCloud::from_points(vec![
///     Point3::new(3.0, 6.0, 2.0),
///     Point3::new(1.0, 3.0, 1.0),
///     Point3::new(4.0, 3.0, 2.0),
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(5.0, 1.0, 0.0),
/// ]);
/// let r = BallQuery::new(11.0).search(&cloud, &[2], 3);
/// assert_eq!(r.neighbors[0], vec![0, 1, 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BallQuery {
    radius_squared: f32,
}

impl BallQuery {
    /// Creates a ball query with the given *squared* search radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius_squared` is not finite and positive.
    pub fn new(radius_squared: f32) -> Self {
        assert!(
            radius_squared.is_finite() && radius_squared > 0.0,
            "radius_squared must be positive and finite, got {radius_squared}"
        );
        BallQuery { radius_squared }
    }

    /// The squared search radius.
    pub fn radius_squared(&self) -> f32 {
        self.radius_squared
    }
}

impl NeighborSearcher for BallQuery {
    fn name(&self) -> &'static str {
        "ballquery"
    }

    /// Scans all candidates and keeps the first `k` within the ball
    /// (self excluded). Queries with no candidate in the ball fall back to
    /// the overall nearest candidate, repeated `k` times, so downstream
    /// grouping always receives a full neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= cloud.len()`, or a query is out of range.
    fn search(&self, cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborResult {
        validate_search_args(cloud, queries, k);
        let mut span = edgepc_trace::span("ballquery.search", "search");
        let points = cloud.points();
        let mut ops = OpCounts::ZERO;
        let neighbors: Vec<Vec<usize>> = queries
            .iter()
            .map(|&q| {
                let qp = points[q];
                let mut hits: Vec<usize> = Vec::with_capacity(k);
                let mut nearest = (f32::INFINITY, usize::MAX);
                for (j, &p) in points.iter().enumerate() {
                    if j == q {
                        continue;
                    }
                    let d = qp.distance_squared(p);
                    ops.cmp += 1;
                    if d <= self.radius_squared && hits.len() < k {
                        hits.push(j);
                    }
                    if d < nearest.0 {
                        nearest = (d, j);
                    }
                }
                if hits.is_empty() {
                    hits.push(nearest.1);
                }
                let first = hits[0];
                while hits.len() < k {
                    hits.push(first);
                }
                hits
            })
            .collect();
        ops.dist3 = (queries.len() * (points.len() - 1)) as u64;
        ops.seq_rounds = (points.len().max(2) as f64).log2().ceil() as u64;
        span.set_ops(ops);
        NeighborResult { neighbors, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgepc_geom::Point3;

    fn paper_points() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(3.0, 6.0, 2.0),
            Point3::new(1.0, 3.0, 1.0),
            Point3::new(4.0, 3.0, 2.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(5.0, 1.0, 0.0),
        ])
    }

    #[test]
    fn paper_fig10a_ball_query_for_p2() {
        let r = BallQuery::new(11.0).search(&paper_points(), &[2], 3);
        assert_eq!(r.neighbors[0], vec![0, 1, 4]);
    }

    #[test]
    fn pads_when_ball_is_sparse() {
        // Only P0 is within squared radius 10.5 of P2... P0 (10) and P1
        // (10) both are; radius 9.5 admits only P4 (9).
        let r = BallQuery::new(9.5).search(&paper_points(), &[2], 3);
        assert_eq!(r.neighbors[0], vec![4, 4, 4]);
    }

    #[test]
    fn empty_ball_falls_back_to_nearest() {
        let r = BallQuery::new(0.5).search(&paper_points(), &[2], 2);
        // Nearest is P4 at squared distance 9.
        assert_eq!(r.neighbors[0], vec![4, 4]);
    }

    #[test]
    fn excludes_self_even_at_distance_zero() {
        let cloud = PointCloud::from_points(vec![
            Point3::ORIGIN,
            Point3::ORIGIN, // duplicate of the query
            Point3::splat(1.0),
        ]);
        let r = BallQuery::new(4.0).search(&cloud, &[0], 2);
        assert_eq!(r.neighbors[0], vec![1, 2]);
    }

    #[test]
    fn cost_matches_full_scan() {
        let cloud: PointCloud = (0..40).map(|i| Point3::splat(i as f32)).collect();
        let r = BallQuery::new(1.5).search(&cloud, &[0, 1], 3);
        assert_eq!(r.ops.dist3, 2 * 39);
    }

    #[test]
    #[should_panic(expected = "radius_squared must be positive")]
    fn non_positive_radius_panics() {
        let _ = BallQuery::new(0.0);
    }
}
