//! Randomized property tests for the neighbor searchers (seeded-random
//! cases; the std-only replacement for the former proptest suite, same
//! properties).

use edgepc_geom::rng::StdRng;
use edgepc_geom::{Point3, PointCloud};
use edgepc_neighbor::{
    false_neighbor_ratio, BallQuery, BruteKnn, GridSearcher, KdTree, MortonWindowSearcher,
    NeighborSearcher,
};

const CASES: usize = 96;

fn arb_cloud(rng: &mut StdRng, min: usize, max: usize) -> PointCloud {
    let n = rng.gen_range(min..=max);
    (0..n)
        .map(|_| {
            Point3::new(
                rng.gen_range(-4.0f32..4.0),
                rng.gen_range(-4.0f32..4.0),
                rng.gen_range(-4.0f32..4.0),
            )
        })
        .collect()
}

/// The realized neighbor distances of each query, sorted — the invariant
/// representation that tie-permutations cannot disturb.
fn distance_profile(cloud: &PointCloud, queries: &[usize], lists: &[Vec<usize>]) -> Vec<Vec<f32>> {
    queries
        .iter()
        .zip(lists)
        .map(|(&q, l)| {
            let mut d: Vec<f32> = l
                .iter()
                .map(|&j| cloud.point(q).distance_squared(cloud.point(j)))
                .collect();
            d.sort_by(f32::total_cmp);
            d
        })
        .collect()
}

#[test]
fn kdtree_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x4e_0001);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 10, 128);
        let k = rng.gen_range(1usize..6);
        let queries: Vec<usize> = (0..cloud.len()).step_by(3).collect();
        let brute = BruteKnn::new().search(&cloud, &queries, k);
        let tree = KdTree::build(&cloud).search(&cloud, &queries, k);
        assert_eq!(
            distance_profile(&cloud, &queries, &brute.neighbors),
            distance_profile(&cloud, &queries, &tree.neighbors)
        );
    }
}

#[test]
fn grid_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x4e_0002);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 10, 96);
        let k = rng.gen_range(1usize..6);
        let queries: Vec<usize> = (0..cloud.len()).step_by(4).collect();
        let brute = BruteKnn::new().search(&cloud, &queries, k);
        let grid = GridSearcher::new().search(&cloud, &queries, k);
        assert_eq!(
            distance_profile(&cloud, &queries, &brute.neighbors),
            distance_profile(&cloud, &queries, &grid.neighbors)
        );
    }
}

#[test]
fn knn_distances_are_sorted_and_self_free() {
    let mut rng = StdRng::seed_from_u64(0x4e_0003);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 6, 64);
        let k = rng.gen_range(1usize..5);
        let queries: Vec<usize> = (0..cloud.len()).collect();
        let r = BruteKnn::new().search(&cloud, &queries, k);
        for (&q, list) in queries.iter().zip(&r.neighbors) {
            assert!(!list.contains(&q));
            let d: Vec<f32> = list
                .iter()
                .map(|&j| cloud.point(q).distance_squared(cloud.point(j)))
                .collect();
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "unsorted: {d:?}");
        }
    }
}

#[test]
fn ball_query_respects_its_radius() {
    let mut rng = StdRng::seed_from_u64(0x4e_0004);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 6, 64);
        let r2 = rng.gen_range(0.01f32..4.0);
        let queries: Vec<usize> = (0..cloud.len()).step_by(2).collect();
        let k = 4.min(cloud.len() - 1);
        let res = BallQuery::new(r2).search(&cloud, &queries, k);
        for (&q, list) in queries.iter().zip(&res.neighbors) {
            // Either all results are inside the ball, or the ball was empty
            // and the searcher fell back to the single nearest point.
            let inside = list
                .iter()
                .all(|&j| cloud.point(q).distance_squared(cloud.point(j)) <= r2);
            let unique: std::collections::HashSet<_> = list.iter().collect();
            assert!(inside || unique.len() == 1, "q{q}: {list:?}");
        }
    }
}

#[test]
fn full_window_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x4e_0005);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 8, 64);
        let k = rng.gen_range(1usize..5);
        let queries: Vec<usize> = (0..cloud.len()).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, k);
        let full = MortonWindowSearcher::new(2 * cloud.len(), 10).search(&cloud, &queries, k);
        assert!(false_neighbor_ratio(&full.neighbors, &exact.neighbors) < 1e-9);
    }
}

#[test]
fn window_results_are_valid_neighbor_lists() {
    let mut rng = StdRng::seed_from_u64(0x4e_0006);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 8, 96);
        let k = rng.gen_range(1usize..5);
        let factor = rng.gen_range(1usize..6);
        let queries: Vec<usize> = (0..cloud.len()).step_by(2).collect();
        let w = (factor * k).min(cloud.len() - 1).max(k);
        let r = MortonWindowSearcher::new(w, 10).search(&cloud, &queries, k);
        for (&q, list) in queries.iter().zip(&r.neighbors) {
            assert_eq!(list.len(), k);
            assert!(!list.contains(&q));
            assert!(list.iter().all(|&j| j < cloud.len()));
        }
    }
}

#[test]
fn kdtree_radius_query_matches_scan() {
    let mut rng = StdRng::seed_from_u64(0x4e_0007);
    for _ in 0..CASES {
        let cloud = arb_cloud(&mut rng, 6, 96);
        let r2 = rng.gen_range(0.01f32..2.0);
        let tree = KdTree::build(&cloud);
        let q = cloud.point(0);
        let mut ops = Default::default();
        let mut got = tree.within_radius(q, r2, Some(0), &mut ops);
        got.sort_unstable();
        let mut want: Vec<usize> = cloud
            .iter()
            .enumerate()
            .filter(|&(j, p)| j != 0 && q.distance_squared(p) <= r2)
            .map(|(j, _)| j)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
