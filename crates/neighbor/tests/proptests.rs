//! Property-based tests for the neighbor searchers.

use edgepc_geom::{Point3, PointCloud};
use edgepc_neighbor::{
    false_neighbor_ratio, BallQuery, BruteKnn, GridSearcher, KdTree, MortonWindowSearcher,
    NeighborSearcher,
};
use proptest::prelude::*;

fn arb_cloud(min: usize, max: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(
        (-4.0f32..4.0, -4.0f32..4.0, -4.0f32..4.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        min..=max,
    )
    .prop_map(PointCloud::from_points)
}

/// The realized neighbor distances of each query, sorted — the invariant
/// representation that tie-permutations cannot disturb.
fn distance_profile(cloud: &PointCloud, queries: &[usize], lists: &[Vec<usize>]) -> Vec<Vec<f32>> {
    queries
        .iter()
        .zip(lists)
        .map(|(&q, l)| {
            let mut d: Vec<f32> = l
                .iter()
                .map(|&j| cloud.point(q).distance_squared(cloud.point(j)))
                .collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d
        })
        .collect()
}

proptest! {
    #[test]
    fn kdtree_matches_brute_force(cloud in arb_cloud(10, 128), k in 1usize..6) {
        let queries: Vec<usize> = (0..cloud.len()).step_by(3).collect();
        let brute = BruteKnn::new().search(&cloud, &queries, k);
        let tree = KdTree::build(&cloud).search(&cloud, &queries, k);
        prop_assert_eq!(
            distance_profile(&cloud, &queries, &brute.neighbors),
            distance_profile(&cloud, &queries, &tree.neighbors)
        );
    }

    #[test]
    fn grid_matches_brute_force(cloud in arb_cloud(10, 96), k in 1usize..6) {
        let queries: Vec<usize> = (0..cloud.len()).step_by(4).collect();
        let brute = BruteKnn::new().search(&cloud, &queries, k);
        let grid = GridSearcher::new().search(&cloud, &queries, k);
        prop_assert_eq!(
            distance_profile(&cloud, &queries, &brute.neighbors),
            distance_profile(&cloud, &queries, &grid.neighbors)
        );
    }

    #[test]
    fn knn_distances_are_sorted_and_self_free(cloud in arb_cloud(6, 64), k in 1usize..5) {
        let queries: Vec<usize> = (0..cloud.len()).collect();
        let r = BruteKnn::new().search(&cloud, &queries, k);
        for (&q, list) in queries.iter().zip(&r.neighbors) {
            prop_assert!(!list.contains(&q));
            let d: Vec<f32> = list
                .iter()
                .map(|&j| cloud.point(q).distance_squared(cloud.point(j)))
                .collect();
            prop_assert!(d.windows(2).all(|w| w[0] <= w[1]), "unsorted: {d:?}");
        }
    }

    #[test]
    fn ball_query_respects_its_radius(cloud in arb_cloud(6, 64), r2 in 0.01f32..4.0) {
        let queries: Vec<usize> = (0..cloud.len()).step_by(2).collect();
        let k = 4.min(cloud.len() - 1);
        let res = BallQuery::new(r2).search(&cloud, &queries, k);
        for (&q, list) in queries.iter().zip(&res.neighbors) {
            // Either all results are inside the ball, or the ball was empty
            // and the searcher fell back to the single nearest point.
            let inside = list
                .iter()
                .all(|&j| cloud.point(q).distance_squared(cloud.point(j)) <= r2);
            let unique: std::collections::HashSet<_> = list.iter().collect();
            prop_assert!(inside || unique.len() == 1, "q{q}: {list:?}");
        }
    }

    #[test]
    fn full_window_is_exact(cloud in arb_cloud(8, 64), k in 1usize..5) {
        let queries: Vec<usize> = (0..cloud.len()).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, k);
        let full = MortonWindowSearcher::new(2 * cloud.len(), 10).search(&cloud, &queries, k);
        prop_assert!(false_neighbor_ratio(&full.neighbors, &exact.neighbors) < 1e-9);
    }

    #[test]
    fn window_results_are_valid_neighbor_lists(
        cloud in arb_cloud(8, 96),
        k in 1usize..5,
        factor in 1usize..6,
    ) {
        let queries: Vec<usize> = (0..cloud.len()).step_by(2).collect();
        let w = (factor * k).min(cloud.len() - 1).max(k);
        let r = MortonWindowSearcher::new(w, 10).search(&cloud, &queries, k);
        for (&q, list) in queries.iter().zip(&r.neighbors) {
            prop_assert_eq!(list.len(), k);
            prop_assert!(!list.contains(&q));
            prop_assert!(list.iter().all(|&j| j < cloud.len()));
        }
    }

    #[test]
    fn kdtree_radius_query_matches_scan(cloud in arb_cloud(6, 96), r2 in 0.01f32..2.0) {
        let tree = KdTree::build(&cloud);
        let q = cloud.point(0);
        let mut ops = Default::default();
        let mut got = tree.within_radius(q, r2, Some(0), &mut ops);
        got.sort_unstable();
        let mut want: Vec<usize> = cloud
            .iter()
            .enumerate()
            .filter(|&(j, p)| j != 0 && q.distance_squared(p) <= r2)
            .map(|(j, _)| j)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
