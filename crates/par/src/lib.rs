//! # edgepc-par
//!
//! A std-only, deterministic data-parallel runtime for the EdgePC hot
//! kernels: a scoped-thread (`std::thread::scope`) fork/join pool with
//! chunked [`par_map`] / [`par_chunks_mut`] / [`par_reduce`] primitives.
//!
//! ## Determinism contract
//!
//! Every primitive takes an explicit `chunk` size and fixes the chunk
//! boundaries from it — *never* from the worker count. Workers are
//! assigned whole chunks round-robin, each chunk is processed by exactly
//! one worker with the same per-chunk code the serial path runs, and
//! chunk results are recombined in chunk order on the calling thread.
//! Consequently the result of any primitive is **bit-identical for every
//! thread count, including 1** — floating-point accumulation order, tie
//! breaks, and output layout cannot depend on scheduling. The kernel
//! rewrites built on top (radix-sorted structurization, blocked matmul,
//! windowed neighbor search) inherit the guarantee, which is what lets
//! `edgepc-serve` keep its outputs worker-count independent while adding
//! intra-batch parallelism.
//!
//! ## Thread-count resolution
//!
//! [`threads`] resolves the worker budget, first match wins:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    determinism tests and by serve workers to give each worker its own
//!    budget without races),
//! 2. the process-global value set by [`set_threads`],
//! 3. the `EDGEPC_THREADS` environment variable (read once),
//! 4. [`std::thread::available_parallelism`].
//!
//! On a single-core host all primitives take a zero-spawn serial fast
//! path, so parallelization never taxes the machines it cannot help.

mod pool;

pub use pool::{par_chunk_map, par_chunks_mut, par_for, par_map, par_ranges, par_reduce};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard ceiling on the worker count, bounding scoped-spawn cost even
/// under a nonsensical `EDGEPC_THREADS`.
pub const MAX_THREADS: usize = 64;

/// Process-global worker budget; 0 means "not set" (fall through to the
/// environment / detected parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = none.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The `EDGEPC_THREADS` environment variable, parsed once per process
/// (0 when absent or unparsable).
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("EDGEPC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The worker budget parallel primitives use on this thread right now.
/// See the crate docs for the resolution order. Always at least 1 and at
/// most [`MAX_THREADS`].
pub fn threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local.min(MAX_THREADS);
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global.min(MAX_THREADS);
    }
    let env = env_threads();
    if env > 0 {
        return env.min(MAX_THREADS);
    }
    detected_threads()
}

/// [`std::thread::available_parallelism`], detected once per process —
/// the resolution fallback sits on the hot path of every primitive and
/// must not re-issue the affinity syscall per call.
fn detected_threads() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

/// Sets the process-global worker budget. `0` resets to automatic
/// resolution (`EDGEPC_THREADS`, then detected parallelism). Thread-local
/// [`with_threads`] overrides still win.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the worker budget overridden to `n` on the *current*
/// thread only (`n == 0` removes any override for the scope). The
/// previous override is restored on exit, including on unwind.
///
/// This is how tests pin `threads() ∈ {1, 2, 8}` without racing each
/// other, and how serve workers scope an intra-batch budget to
/// themselves.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| {
        let p = c.get();
        c.set(n);
        p
    });
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
        assert!(threads() <= MAX_THREADS);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = threads();
        let inner = with_threads(3, threads);
        assert_eq!(inner, 3);
        assert_eq!(threads(), ambient, "override must not leak");
    }

    #[test]
    fn with_threads_nests_and_survives_unwind() {
        with_threads(5, || {
            assert_eq!(threads(), 5);
            let r = std::panic::catch_unwind(|| {
                with_threads(2, || -> usize {
                    assert_eq!(threads(), 2);
                    panic!("boom")
                })
            });
            assert!(r.is_err());
            assert_eq!(threads(), 5, "unwind must restore the outer override");
        });
    }

    #[test]
    fn with_threads_zero_clears_override() {
        let ambient = with_threads(0, threads);
        with_threads(7, || {
            assert_eq!(with_threads(0, threads), ambient);
        });
    }

    #[test]
    fn override_caps_at_max_threads() {
        assert_eq!(with_threads(1_000_000, threads), MAX_THREADS);
    }
}
