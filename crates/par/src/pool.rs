//! The fork/join primitives.
//!
//! Each call forks a fresh `std::thread::scope` (no persistent pool: the
//! workspace is std-only and scoped threads borrow the caller's data
//! without `'static` gymnastics or unsafe). Chunk boundaries come from
//! the caller's `chunk` argument alone; workers take whole chunks
//! round-robin (`chunk_index % workers`) and results are stitched back
//! in chunk order, so outputs are bit-identical for any worker count —
//! see the crate docs for the full determinism contract.
//!
//! When the resolved budget is one worker (or there is at most one
//! chunk) every primitive degenerates to the plain serial loop with zero
//! spawns and zero extra allocation beyond the output itself.

use crate::threads;

/// Workers to fork for `n_chunks` chunks of work: never more workers
/// than chunks, never zero.
fn workers_for(n_chunks: usize) -> usize {
    threads().min(n_chunks).max(1)
}

/// Runs `f(0) ..= f(n_tasks - 1)`, distributing task indices round-robin
/// over the worker budget. Every index runs exactly once; ordering
/// *across* workers is unspecified, so `f` must only touch disjoint or
/// synchronized state per index (e.g. atomic scatter targets).
pub fn par_for(n_tasks: usize, f: impl Fn(usize) + Sync) {
    let t = workers_for(n_tasks);
    if t <= 1 {
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|s| {
        for w in 1..t {
            s.spawn(move || {
                let mut i = w;
                while i < n_tasks {
                    f(i);
                    i += t;
                }
            });
        }
        let mut i = 0;
        while i < n_tasks {
            f(i);
            i += t;
        }
    });
}

/// Maps `f` over fixed `chunk`-sized slices of `items` (the last chunk
/// may be short), returning one result per chunk **in chunk order**.
/// `f` receives the chunk index and the chunk slice.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunk_map<T: Sync, A: Send>(
    items: &[T],
    chunk: usize,
    f: impl Fn(usize, &[T]) -> A + Sync,
) -> Vec<A> {
    assert!(chunk > 0, "chunk size must be positive");
    if items.is_empty() {
        return Vec::new();
    }
    let n_chunks = items.len().div_ceil(chunk);
    let t = workers_for(n_chunks);
    if t <= 1 {
        return items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let mut slots: Vec<Option<A>> = Vec::new();
    slots.resize_with(n_chunks, || None);
    type Bucket<'a, T, A> = Vec<(usize, &'a [T], &'a mut Option<A>)>;
    let mut buckets: Vec<Bucket<'_, T, A>> = (0..t).map(|_| Vec::new()).collect();
    for (i, (c, slot)) in items.chunks(chunk).zip(slots.iter_mut()).enumerate() {
        buckets[i % t].push((i, c, slot));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut buckets = buckets.into_iter();
        let own = buckets.next();
        for bucket in buckets {
            s.spawn(move || {
                for (i, c, slot) in bucket {
                    *slot = Some(f(i, c));
                }
            });
        }
        if let Some(bucket) = own {
            for (i, c, slot) in bucket {
                *slot = Some(f(i, c));
            }
        }
    });
    let out: Vec<A> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), n_chunks, "every chunk produces a result");
    out
}

/// Maps `f` over half-open index ranges `[c*chunk, min((c+1)*chunk, n))`
/// covering `0..n`, returning one result per range in range order. For
/// kernels that index shared state rather than iterate a slice.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_ranges<A: Send>(
    n: usize,
    chunk: usize,
    f: impl Fn(std::ops::Range<usize>) -> A + Sync,
) -> Vec<A> {
    assert!(chunk > 0, "chunk size must be positive");
    let starts: Vec<usize> = (0..n.div_ceil(chunk)).map(|c| c * chunk).collect();
    par_chunk_map(&starts, 1, |_, s| {
        let lo = s[0];
        f(lo..(lo + chunk).min(n))
    })
}

/// Element-wise parallel map with deterministic chunking: equivalent to
/// `items.iter().map(f).collect()` for every thread count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_map<T: Sync, U: Send>(items: &[T], chunk: usize, f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let t = workers_for(items.len().div_ceil(chunk.max(1)));
    if t <= 1 {
        assert!(chunk > 0, "chunk size must be positive");
        return items.iter().map(f).collect();
    }
    let per_chunk = par_chunk_map(items, chunk, |_, c| c.iter().map(&f).collect::<Vec<U>>());
    let mut out = Vec::with_capacity(items.len());
    for mut v in per_chunk {
        out.append(&mut v);
    }
    out
}

/// Applies `f` to fixed `chunk`-sized mutable slices of `data` in
/// parallel. `f` receives the chunk index and the chunk slice; the
/// element offset of chunk `i` is `i * chunk`. Equivalent to the serial
/// `for (i, c) in data.chunks_mut(chunk).enumerate() { f(i, c) }`.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunks_mut<T: Send>(data: &mut [T], chunk: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    assert!(chunk > 0, "chunk size must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk);
    let t = workers_for(n_chunks);
    if t <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..t).map(|_| Vec::new()).collect();
    for (i, c) in data.chunks_mut(chunk).enumerate() {
        buckets[i % t].push((i, c));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut buckets = buckets.into_iter();
        let own = buckets.next();
        for bucket in buckets {
            s.spawn(move || {
                for (i, c) in bucket {
                    f(i, c);
                }
            });
        }
        if let Some(bucket) = own {
            for (i, c) in bucket {
                f(i, c);
            }
        }
    });
}

/// Chunked map-reduce: maps `map` over fixed `chunk`-sized slices in
/// parallel, then folds the per-chunk results **sequentially in chunk
/// order** on the calling thread — so the reduction order (and any
/// floating-point rounding in `fold`) is independent of the thread
/// count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_reduce<T: Sync, A: Send>(
    items: &[T],
    chunk: usize,
    identity: A,
    map: impl Fn(usize, &[T]) -> A + Sync,
    fold: impl FnMut(A, A) -> A,
) -> A {
    par_chunk_map(items, chunk, map)
        .into_iter()
        .fold(identity, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn par_map_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for t in [1usize, 2, 3, 8] {
            let got = with_threads(t, || par_map(&items, 64, |&x| x * 3 + 1));
            assert_eq!(got, expect, "thread count {t}");
        }
    }

    #[test]
    fn par_chunk_map_preserves_chunk_order_and_indices() {
        let items: Vec<u32> = (0..257).collect();
        for t in [1usize, 4] {
            let got = with_threads(t, || par_chunk_map(&items, 16, |i, c| (i, c.len(), c[0])));
            assert_eq!(got.len(), 17);
            for (i, &(ci, len, first)) in got.iter().enumerate() {
                assert_eq!(ci, i);
                assert_eq!(len, if i == 16 { 1 } else { 16 });
                assert_eq!(first as usize, i * 16);
            }
        }
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        for t in [1usize, 2, 5] {
            let mut data = vec![0u32; 103];
            with_threads(t, || {
                par_chunks_mut(&mut data, 10, |i, c| {
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = (i * 10 + j) as u32 + 1;
                    }
                });
            });
            let expect: Vec<u32> = (1..=103).collect();
            assert_eq!(data, expect, "thread count {t}");
        }
    }

    #[test]
    fn par_reduce_folds_in_chunk_order() {
        // A non-commutative fold (string concat) exposes any ordering
        // dependence on the worker count.
        let items: Vec<usize> = (0..40).collect();
        let reduce = || {
            par_reduce(
                &items,
                7,
                String::new(),
                |i, c| format!("[{i}:{}]", c.len()),
                |a, b| a + &b,
            )
        };
        let serial = with_threads(1, reduce);
        for t in [2usize, 8] {
            assert_eq!(with_threads(t, reduce), serial, "thread count {t}");
        }
    }

    #[test]
    fn par_for_runs_every_index_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for t in [1usize, 3, 9] {
            let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
            with_threads(t, || {
                par_for(100, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_ranges_covers_zero_to_n() {
        for t in [1usize, 4] {
            let got = with_threads(t, || par_ranges(23, 5, |r| (r.start, r.end)));
            assert_eq!(got, vec![(0, 5), (5, 10), (10, 15), (15, 20), (20, 23)]);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert!(par_chunk_map(&empty, 8, |_, c| c.len()).is_empty());
        let mut none: Vec<u32> = Vec::new();
        par_chunks_mut(&mut none, 8, |_, _| {});
        par_for(0, |_| {});
        assert!(par_ranges(0, 8, |r| r.len()).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let _ = par_chunk_map(&[1u32], 0, |_, c| c.len());
    }
}
