//! netgen: the multi-connection open-loop client driver.
//!
//! Generalizes loadgen's seeded arrival schedules across C persistent
//! connections: each connection gets its own deterministic
//! [`arrival_offsets`] schedule (seed derived from the run seed and the
//! connection index) and a seeded per-tenant mix (skewed toward low
//! tenant ids, so consistent-hash routing sees realistic hot tenants).
//! Requests are pipelined — a sender thread writes on schedule
//! regardless of completions (open loop), a receiver thread matches
//! responses by `seq` and records **end-to-end latency including wire
//! time**.
//!
//! [`run_sweep`] is the canonical producer of `results/net.json`: for
//! each shard count it builds a router + front end in-process on an
//! ephemeral loopback port, drives it over real sockets, and reads the
//! hedge counters straight from the run's isolated registry.
//! [`run_against`] drives an external server instead (hedge accounting
//! then comes from response flags only).
//!
//! Everything is seeded: the same config produces the same request
//! bytes, in the same per-connection order, at every shard count — which
//! is exactly what the over-the-wire determinism test leans on.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use edgepc_data::bunny_with_points;
use edgepc_geom::rng::StdRng;
use edgepc_geom::PointCloud;
use edgepc_perf::Stats;
use edgepc_serve::{arrival_offsets, ArrivalPattern, EngineConfig, LoadgenConfig, ModelSpec};
use edgepc_trace::{with_registry, Registry};

use crate::proto::{self, decode_body, encode_request, ErrCode, Frame, FrameRead, RequestFrame};
use crate::router::{HedgeConfig, RoutePolicy, Router};
use crate::server::{NetConfig, NetServer};

/// One netgen run's parameters.
#[derive(Debug, Clone)]
pub struct NetgenConfig {
    /// Shard counts to sweep (one report row each).
    pub shards: Vec<usize>,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests per row, split across the connections.
    pub requests: usize,
    /// Aggregate offered rate (split evenly across connections).
    pub rate_rps: f64,
    /// Arrival spacing per connection.
    pub pattern: ArrivalPattern,
    /// Master seed; per-connection schedules and tenant mixes derive
    /// from it.
    pub seed: u64,
    /// Points per request cloud.
    pub points: usize,
    /// Tenant-id space for the per-request tenant mix.
    pub tenants: u64,
    /// Per-request deadline (also the SLO bound for attainment).
    pub deadline: Duration,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Submission-queue bound per shard.
    pub queue_capacity: usize,
    /// Max dynamic batch per shard.
    pub max_batch: usize,
    /// Routing policy.
    pub policy: RoutePolicy,
    /// Hedged-retry threshold; `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Chaos knob: stall shard 0's workers by this much per batch
    /// (self-hosted rows only), so the sweep records degraded operation.
    pub chaos_slow_shard: Option<Duration>,
}

impl Default for NetgenConfig {
    fn default() -> Self {
        NetgenConfig {
            shards: vec![1, 2, 3],
            connections: 4,
            requests: 256,
            rate_rps: 500.0,
            pattern: ArrivalPattern::Burst { size: 32 },
            seed: 0x0e7,
            points: 256,
            tenants: 8,
            deadline: Duration::from_millis(250),
            workers_per_shard: 2,
            queue_capacity: 64,
            max_batch: 4,
            policy: RoutePolicy::LeastLoaded,
            // Sits between the sweep's typical p50 and p99, so the tail
            // of a burst actually hedges in the committed artifact.
            hedge_after: Some(Duration::from_millis(35)),
            chaos_slow_shard: None,
        }
    }
}

impl NetgenConfig {
    /// A seconds-scale config for CI smoke runs: 2 shards, 2 connections,
    /// small clouds.
    pub fn smoke() -> Self {
        NetgenConfig {
            shards: vec![2],
            connections: 2,
            requests: 96,
            rate_rps: 400.0,
            points: 128,
            workers_per_shard: 1,
            queue_capacity: 32,
            hedge_after: Some(Duration::from_millis(50)),
            ..NetgenConfig::default()
        }
    }
}

/// Typed-error tallies a client run observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrTally {
    /// `Shed` responses (every eligible shard full).
    pub shed: usize,
    /// `DeadlineExpired` responses.
    pub expired: usize,
    /// Every other typed error (unknown model, too few points,
    /// shutting down, busy, malformed, internal).
    pub other: usize,
}

/// What one row's client side measured.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Requests written to sockets.
    pub sent: usize,
    /// Responses carrying logits.
    pub completed: usize,
    /// Completions within the deadline, measured client-side (wire
    /// included).
    pub in_deadline: usize,
    /// Responses whose `hedged` flag was set (hedge wins observed).
    pub hedged_responses: usize,
    /// Typed errors.
    pub errors: ErrTally,
    /// Requests that never got a response (connection died).
    pub lost: usize,
    /// Completions per shard id.
    pub per_shard: Vec<usize>,
    /// Client-side end-to-end latencies (ms) of completions.
    pub latencies_ms: Vec<f64>,
    /// Wall time of the whole client run.
    pub wall: Duration,
}

/// One report row: a client outcome plus the serving-side context it ran
/// against.
#[derive(Debug, Clone)]
pub struct NetRow {
    /// Shard count (0 for external runs where it is unknown).
    pub shards: usize,
    /// Hedges launched (registry truth for self-hosted rows; observed
    /// wins for external rows).
    pub hedges_attempted: u64,
    /// Hedges that beat the primary.
    pub hedge_wins: u64,
    /// The client-side measurements.
    pub outcome: ClientOutcome,
}

impl NetRow {
    /// SLO attainment: in-deadline completions over everything offered.
    pub fn attainment(&self) -> f64 {
        if self.outcome.sent == 0 {
            return 0.0;
        }
        self.outcome.in_deadline as f64 / self.outcome.sent as f64
    }

    /// Completions per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.outcome.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.outcome.completed as f64 / secs
    }

    /// Latency summary, if anything completed.
    pub fn latency(&self) -> Option<Stats> {
        if self.outcome.latencies_ms.is_empty() {
            None
        } else {
            Some(Stats::from_samples_ms(&self.outcome.latencies_ms))
        }
    }
}

/// A full sweep: one row per configured shard count.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// The driving config.
    pub config: NetgenConfig,
    /// One row per entry of `config.shards`, in order.
    pub rows: Vec<NetRow>,
}

/// splitmix64 finalizer (same mix the router's ring uses) for deriving
/// per-connection seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn thread_err(what: &str) -> io::Error {
    io::Error::other(format!("netgen {what} thread panicked"))
}

/// The deterministic request set for connection `conn`: for each request
/// index, (send offset, tenant, cloud index). Pure in the config.
fn conn_schedule(cfg: &NetgenConfig, conn: usize, n: usize) -> Vec<(Duration, u64, usize)> {
    let per_conn_rate = (cfg.rate_rps / cfg.connections.max(1) as f64).max(1e-6);
    let offsets = arrival_offsets(&LoadgenConfig {
        requests: n,
        rate_rps: per_conn_rate,
        pattern: cfg.pattern,
        seed: mix64(cfg.seed ^ (conn as u64)),
        points: cfg.points,
        model: 0,
        deadline: Some(cfg.deadline),
    });
    let mut rng = StdRng::seed_from_u64(mix64(cfg.seed.wrapping_add(0x7e4a) ^ (conn as u64)));
    let tenants = cfg.tenants.max(1);
    offsets
        .into_iter()
        .enumerate()
        .map(|(i, off)| {
            // Product of two uniforms skews the mix toward low tenant ids
            // — hot tenants, which is what makes sticky routing matter.
            let t = (rng.next_f64() * rng.next_f64() * tenants as f64) as u64;
            (off, t.min(tenants - 1), (conn + i) % CLOUD_POOL)
        })
        .collect()
}

/// Distinct clouds cycled across requests (generating a fresh bunny per
/// request would dominate the client's CPU budget).
const CLOUD_POOL: usize = 8;

fn cloud_pool(cfg: &NetgenConfig) -> Vec<PointCloud> {
    (0..CLOUD_POOL as u64)
        .map(|i| bunny_with_points(cfg.points.max(20), cfg.seed.wrapping_add(i)))
        .collect()
}

struct ConnResult {
    sent: usize,
    completed: usize,
    in_deadline: usize,
    hedged: usize,
    errors: ErrTally,
    lost: usize,
    per_shard: Vec<usize>,
    latencies_ms: Vec<f64>,
}

/// Drives one connection: sender on this thread, receiver on a helper.
fn run_connection(
    addr: SocketAddr,
    cfg: &NetgenConfig,
    conn: usize,
    n: usize,
    clouds: &[PointCloud],
) -> io::Result<ConnResult> {
    let schedule = conn_schedule(cfg, conn, n);
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut read_half = stream.try_clone()?;
    read_half.set_read_timeout(Some(Duration::from_secs(10)))?;
    let (meta_tx, meta_rx) = mpsc::channel::<(u64, Instant)>();
    let deadline = cfg.deadline;
    let max_frame = proto::DEFAULT_MAX_FRAME;
    let receiver = std::thread::Builder::new()
        .name(format!("netgen-recv-{conn}"))
        .spawn(move || receive_responses(&mut read_half, n, &meta_rx, deadline, max_frame))?;

    let deadline_us = cfg.deadline.as_micros() as u64;
    let mut write_half = stream;
    let start = Instant::now();
    let mut sent = 0usize;
    for (i, (off, tenant, cloud_ix)) in schedule.into_iter().enumerate() {
        let target = start + off;
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let seq = ((conn as u64) << 32) | i as u64;
        let frame = encode_request(&RequestFrame {
            seq,
            trace_id: 0,
            model: 0,
            tenant,
            deadline_us,
            points: clouds[cloud_ix % clouds.len()].points().to_vec(),
        });
        // Register the send before writing so the receiver can never see
        // a response for a seq it does not know.
        let _ = meta_tx.send((seq, Instant::now()));
        write_half.write_all(&frame)?;
        sent += 1;
    }
    drop(meta_tx);
    let mut result = match receiver.join() {
        Ok(r) => r,
        Err(_) => return Err(thread_err("receiver")),
    };
    result.sent = sent;
    result.lost = sent.saturating_sub(result.completed + tally_total(&result.errors));
    Ok(result)
}

fn tally_total(t: &ErrTally) -> usize {
    t.shed + t.expired + t.other
}

fn receive_responses(
    stream: &mut TcpStream,
    expected: usize,
    meta_rx: &mpsc::Receiver<(u64, Instant)>,
    deadline: Duration,
    max_frame: u32,
) -> ConnResult {
    let mut result = ConnResult {
        sent: 0,
        completed: 0,
        in_deadline: 0,
        hedged: 0,
        errors: ErrTally::default(),
        lost: 0,
        per_shard: Vec::new(),
        latencies_ms: Vec::new(),
    };
    let mut sends: HashMap<u64, Instant> = HashMap::new();
    for _ in 0..expected {
        let body = match proto::read_frame(stream, max_frame) {
            Ok(FrameRead::Body(b)) => b,
            // EOF, framing violation, or read timeout: the rest is lost.
            Ok(FrameRead::Eof) | Ok(FrameRead::Malformed(_)) | Err(_) => break,
        };
        let now = Instant::now();
        while let Ok((seq, at)) = meta_rx.try_recv() {
            sends.insert(seq, at);
        }
        match decode_body(&body) {
            Ok(Frame::Ok(ok)) => {
                result.completed += 1;
                if ok.hedged {
                    result.hedged += 1;
                }
                let shard = ok.shard as usize;
                if result.per_shard.len() <= shard {
                    result.per_shard.resize(shard + 1, 0);
                }
                result.per_shard[shard] += 1;
                if let Some(at) = sends.get(&ok.seq) {
                    let e2e = now.saturating_duration_since(*at);
                    result.latencies_ms.push(e2e.as_secs_f64() * 1000.0);
                    if e2e <= deadline {
                        result.in_deadline += 1;
                    }
                }
            }
            Ok(Frame::Err(err)) => match err.code {
                ErrCode::Shed => result.errors.shed += 1,
                ErrCode::DeadlineExpired => result.errors.expired += 1,
                _ => result.errors.other += 1,
            },
            Ok(Frame::Request(_)) | Err(_) => result.errors.other += 1,
        }
    }
    result
}

/// Drives `cfg.connections` connections against `addr` and aggregates.
pub fn run_against(addr: SocketAddr, cfg: &NetgenConfig) -> io::Result<ClientOutcome> {
    let clouds = Arc::new(cloud_pool(cfg));
    let conns = cfg.connections.max(1);
    let base = cfg.requests / conns;
    let extra = cfg.requests % conns;
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(conns);
    for c in 0..conns {
        let n = base + usize::from(c < extra);
        let cfg = cfg.clone();
        let clouds = Arc::clone(&clouds);
        let handle = std::thread::Builder::new()
            .name(format!("netgen-conn-{c}"))
            .spawn(move || run_connection(addr, &cfg, c, n, &clouds))?;
        handles.push(handle);
    }
    let mut agg = ClientOutcome {
        sent: 0,
        completed: 0,
        in_deadline: 0,
        hedged_responses: 0,
        errors: ErrTally::default(),
        lost: 0,
        per_shard: Vec::new(),
        latencies_ms: Vec::new(),
        wall: Duration::ZERO,
    };
    let mut first_err = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(r)) => {
                agg.sent += r.sent;
                agg.completed += r.completed;
                agg.in_deadline += r.in_deadline;
                agg.hedged_responses += r.hedged;
                agg.errors.shed += r.errors.shed;
                agg.errors.expired += r.errors.expired;
                agg.errors.other += r.errors.other;
                agg.lost += r.lost;
                if agg.per_shard.len() < r.per_shard.len() {
                    agg.per_shard.resize(r.per_shard.len(), 0);
                }
                for (s, count) in r.per_shard.iter().enumerate() {
                    agg.per_shard[s] += count;
                }
                agg.latencies_ms.extend_from_slice(&r.latencies_ms);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => first_err = first_err.or_else(|| Some(thread_err("connection"))),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    agg.wall = t0.elapsed();
    Ok(agg)
}

/// Runs one self-hosted row: builds `shards` engines behind a router and
/// front end on an ephemeral loopback port (under a fresh, isolated
/// registry), drives the client against it over real sockets, and reads
/// hedge accounting from the registry.
pub fn run_row(cfg: &NetgenConfig, shards: usize) -> io::Result<NetRow> {
    let registry = Arc::new(Registry::new());
    with_registry(Arc::clone(&registry), || -> io::Result<NetRow> {
        let shard_cfgs = (0..shards.max(1))
            .map(|s| {
                let mut c = EngineConfig::new(cfg.workers_per_shard.max(1));
                c.queue_capacity = cfg.queue_capacity;
                c.max_batch = cfg.max_batch.max(1);
                if s == 0 {
                    if let Some(delay) = cfg.chaos_slow_shard {
                        c.exec_delay = delay;
                    }
                }
                c
            })
            .collect();
        let router = Arc::new(Router::new(
            shard_cfgs,
            vec![ModelSpec::pointnetpp_tiny(16)],
            cfg.policy,
            cfg.hedge_after.map(HedgeConfig::after),
        ));
        let server = NetServer::start(Arc::clone(&router), "127.0.0.1:0", NetConfig::default())?;
        let addr = server.local_addr();
        let mut outcome = run_against(addr, cfg)?;
        server.stop();
        router.shutdown();
        if outcome.per_shard.len() < shards {
            outcome.per_shard.resize(shards, 0);
        }
        Ok(NetRow {
            shards,
            hedges_attempted: registry.counter(crate::metrics::HEDGES),
            hedge_wins: registry.counter(crate::metrics::HEDGE_WINS),
            outcome,
        })
    })
}

/// Runs the full shard-count sweep.
pub fn run_sweep(cfg: &NetgenConfig) -> io::Result<NetReport> {
    let mut rows = Vec::with_capacity(cfg.shards.len());
    for &shards in &cfg.shards {
        rows.push(run_row(cfg, shards)?);
    }
    Ok(NetReport {
        config: cfg.clone(),
        rows,
    })
}
