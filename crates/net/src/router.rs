//! The shard router: placement policies, failover, and hedged retries
//! over N deterministic [`Engine`] shards.
//!
//! Two placement policies:
//!
//! * **least-loaded** — rank eligible shards by
//!   [`Engine::load`] (admitted-but-unresolved requests, read from an
//!   atomic, no locks) and pick the smallest, lowest index breaking ties.
//! * **tenant hash** — consistent hashing: each shard owns 16 virtual
//!   nodes on a `u64` ring; a tenant maps to the first vnode at or after
//!   its hash. A tenant is sticky to its shard, and removing a shard
//!   reassigns only the tenants that lived on its vnodes.
//!
//! Per-model **replica groups** restrict which shards a model's requests
//! may land on. Every shard still builds every model replica (so model
//! indices agree everywhere); the group is purely a routing constraint.
//!
//! **Failover**: if the preferred shard refuses (queue full / shutting
//! down), the router walks the remaining candidates in preference order.
//! A shard that reports `ShuttingDown` is marked unhealthy and skipped
//! from then on. When every candidate refuses, the request is shed with
//! a typed error — the router degrades by shedding, never by blocking.
//!
//! **Hedged retries**: with hedging configured, [`Router::settle`] polls
//! the primary ticket for the deadline-risk threshold; if it is still
//! unresolved, the request is re-submitted to the next-least-loaded
//! eligible shard and the first completion wins. Shards build identical
//! deterministic replicas, so the winner's logits are bit-identical to
//! what the loser would have produced — hedging trades duplicate work
//! for tail latency, never for a different answer.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use edgepc_geom::guard::ranked_with;
use edgepc_geom::PointCloud;
use edgepc_serve::{Engine, EngineConfig, InferenceOutput, ModelSpec, Request, ServeError, Ticket};
use edgepc_trace::{span_in, Registry};

use crate::lockrank;
use crate::metrics;

/// How the router picks a shard for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Smallest [`Engine::load`] wins; lowest index breaks ties.
    LeastLoaded,
    /// Consistent hash of the tenant id (per-tenant sticky).
    TenantHash,
}

impl RoutePolicy {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::LeastLoaded => "least_loaded",
            RoutePolicy::TenantHash => "tenant_hash",
        }
    }
}

/// Hedged-retry tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Deadline-risk threshold: how long (measured from submission) the
    /// primary ticket may stay unresolved before a hedge is launched.
    pub after: Duration,
    /// Poll slice used while racing the primary against the hedge.
    pub poll: Duration,
}

impl HedgeConfig {
    /// Hedge after `after`, with a default 200 µs race poll.
    pub fn after(after: Duration) -> Self {
        HedgeConfig {
            after,
            poll: Duration::from_micros(200),
        }
    }
}

/// A routed, in-flight request: the engine ticket plus what a hedge
/// re-submission needs.
#[derive(Debug)]
pub struct RouterTicket {
    model: usize,
    tenant: u64,
    deadline: Option<Duration>,
    /// Clone of the input, kept only when hedging is enabled.
    spare: Option<PointCloud>,
    shard: usize,
    ticket: Ticket,
    submitted: Instant,
}

impl RouterTicket {
    /// The engine-assigned id, which is also the request's trace id.
    pub fn trace_id(&self) -> u64 {
        self.ticket.id()
    }

    /// The shard the primary submission landed on.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// A resolved request, annotated with where (and how) it resolved.
#[derive(Debug, Clone)]
pub struct RoutedOutput {
    /// The shard's output.
    pub output: InferenceOutput,
    /// Shard that produced it.
    pub shard: usize,
    /// Whether a hedged retry (not the primary) won.
    pub hedged: bool,
}

struct RouterState {
    healthy: Vec<bool>,
}

/// A router over N engine shards. See the module docs for the policies.
pub struct Router {
    shards: Vec<Engine>,
    specs: Vec<ModelSpec>,
    /// model index -> shard indices eligible to serve it.
    groups: Vec<Vec<usize>>,
    /// Consistent-hash ring: (vnode hash, shard), sorted by hash.
    ring: Vec<(u64, usize)>,
    policy: RoutePolicy,
    hedge: Option<HedgeConfig>,
    registry: Arc<Registry>,
    state: Mutex<RouterState>,
}

const VNODES_PER_SHARD: u64 = 16;

/// splitmix64 finalizer: a fixed, process-independent mix so ring
/// placement (and therefore tenant stickiness) is reproducible.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Router {
    /// Builds one engine per config, all serving the same model list, and
    /// routes every model to every shard. Spans and metrics go to the
    /// trace registry current on the calling thread (like
    /// [`Engine::new`]); the engines inherit the same registry, so one
    /// snapshot covers the router and its shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_cfgs` or `specs` is empty (same contract as
    /// [`Engine::new`]).
    pub fn new(
        shard_cfgs: Vec<EngineConfig>,
        specs: Vec<ModelSpec>,
        policy: RoutePolicy,
        hedge: Option<HedgeConfig>,
    ) -> Router {
        assert!(!shard_cfgs.is_empty(), "need at least one shard");
        assert!(!specs.is_empty(), "need at least one model spec");
        let registry = edgepc_trace::current_registry();
        let _span = span_in(registry.clone(), "net.router_init", "net");
        let n = shard_cfgs.len();
        let shards: Vec<Engine> = shard_cfgs
            .into_iter()
            .map(|cfg| Engine::new(cfg, specs.clone()))
            .collect();
        let groups = vec![(0..n).collect::<Vec<usize>>(); specs.len()];
        let mut ring = Vec::with_capacity(n * VNODES_PER_SHARD as usize);
        for shard in 0..n {
            for v in 0..VNODES_PER_SHARD {
                ring.push((mix64((shard as u64) << 32 | v), shard));
            }
        }
        ring.sort_unstable();
        Router {
            shards,
            specs,
            groups,
            ring,
            policy,
            hedge,
            registry,
            state: Mutex::new(RouterState {
                healthy: vec![true; n],
            }),
        }
    }

    /// Replaces the per-model replica groups: `groups[m]` lists the shard
    /// indices eligible to serve model `m`. Indices out of range and
    /// empty groups are rejected.
    pub fn with_groups(mut self, groups: Vec<Vec<usize>>) -> Router {
        assert_eq!(groups.len(), self.specs.len(), "one group per model");
        for g in &groups {
            assert!(!g.is_empty(), "replica groups cannot be empty");
            assert!(g.iter().all(|&s| s < self.shards.len()), "shard index");
        }
        self.groups = groups;
        self
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of models every shard serves.
    pub fn models(&self) -> usize {
        self.specs.len()
    }

    /// The point floor of model `model`, if it exists — the front end
    /// rejects thinner requests before they can reach a worker.
    pub fn min_points(&self, model: usize) -> Option<usize> {
        self.specs.get(model).map(ModelSpec::min_points)
    }

    /// Direct access to shard `i`'s engine (tests, chaos drivers).
    pub fn shard_engine(&self, i: usize) -> Option<&Engine> {
        self.shards.get(i)
    }

    /// The registry the router (and its shards) publish into.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Current per-shard health (false = marked down after a
    /// `ShuttingDown` refusal).
    pub fn healthy(&self) -> Vec<bool> {
        ranked_with(lockrank::ROUTER, "net.router", || {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        })
        .healthy
        .clone()
    }

    fn mark_shard_down(&self, shard: usize) {
        let mut state = ranked_with(lockrank::ROUTER, "net.router", || {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        });
        if let Some(h) = state.healthy.get_mut(shard) {
            *h = false;
        }
    }

    /// Candidate shards for (`model`, `tenant`) in preference order:
    /// primary first, then failover order. Empty only for unknown models.
    fn plan(&self, model: usize, tenant: u64) -> Vec<usize> {
        let Some(group) = self.groups.get(model) else {
            return Vec::new();
        };
        let healthy = self.healthy();
        let mut candidates: Vec<usize> = group
            .iter()
            .copied()
            .filter(|&s| healthy.get(s).copied().unwrap_or(false))
            .collect();
        if candidates.is_empty() {
            // Everything marked down: try the whole group anyway rather
            // than refusing outright — a recovered shard re-admits here.
            candidates = group.clone();
        }
        match self.policy {
            RoutePolicy::LeastLoaded => {
                candidates.sort_by_key(|&s| {
                    (
                        self.shards.get(s).map(Engine::load).unwrap_or(usize::MAX),
                        s,
                    )
                });
            }
            RoutePolicy::TenantHash => {
                // Walk the ring clockwise from the tenant's hash; the
                // first eligible shard met is the primary, later ones
                // form the failover order.
                let h = mix64(tenant);
                let start = self.ring.partition_point(|&(vh, _)| vh < h);
                let mut ordered = Vec::with_capacity(candidates.len());
                for i in 0..self.ring.len() {
                    let (_, shard) = self.ring[(start + i) % self.ring.len()];
                    if candidates.contains(&shard) && !ordered.contains(&shard) {
                        ordered.push(shard);
                        if ordered.len() == candidates.len() {
                            break;
                        }
                    }
                }
                candidates = ordered;
            }
        }
        candidates
    }

    /// The shard a request for (`model`, `tenant`) would land on right
    /// now, before failover. `None` for unknown models.
    pub fn route_for(&self, model: usize, tenant: u64) -> Option<usize> {
        self.plan(model, tenant).first().copied()
    }

    /// Routes and submits a request. Walks the candidate shards in
    /// preference order; refusals fail over ([`metrics::FAILOVERS`]), a
    /// `ShuttingDown` shard is marked unhealthy, and if every candidate
    /// refuses the request is shed with the last refusal.
    pub fn submit(
        &self,
        model: usize,
        tenant: u64,
        cloud: PointCloud,
        deadline: Option<Duration>,
    ) -> Result<RouterTicket, ServeError> {
        let _span = span_in(self.registry.clone(), "net.route", "net");
        self.registry.incr(metrics::REQUESTS, 1);
        let plan = self.plan(model, tenant);
        if plan.is_empty() {
            return Err(ServeError::UnknownModel {
                index: model,
                models: self.specs.len(),
            });
        }
        let submitted = Instant::now();
        let mut last_err = ServeError::ShuttingDown;
        for (attempt, &shard) in plan.iter().enumerate() {
            if attempt > 0 {
                self.registry.incr(metrics::FAILOVERS, 1);
            }
            match self.submit_to_shard(shard, model, cloud.clone(), deadline) {
                Ok(ticket) => {
                    return Ok(RouterTicket {
                        model,
                        tenant,
                        deadline,
                        spare: self.hedge.map(|_| cloud),
                        shard,
                        ticket,
                        submitted,
                    });
                }
                Err(err) => {
                    if matches!(err, ServeError::ShuttingDown) {
                        self.mark_shard_down(shard);
                    }
                    last_err = err;
                }
            }
        }
        if matches!(last_err, ServeError::QueueFull { .. }) {
            self.registry.incr(metrics::SHED, 1);
        }
        Err(last_err)
    }

    fn submit_to_shard(
        &self,
        shard: usize,
        model: usize,
        cloud: PointCloud,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let engine = self.shards.get(shard).ok_or(ServeError::ShuttingDown)?;
        engine.submit(Request {
            model,
            cloud,
            deadline,
        })
    }

    /// Waits for a routed request to resolve. Without hedging this is a
    /// plain wait on the primary ticket. With hedging, the primary gets
    /// [`HedgeConfig::after`] to resolve; past that the request is
    /// re-submitted to the next preferred shard (skipping the primary)
    /// and the first **successful** completion wins — errors on one leg
    /// wait out the other leg before surfacing.
    pub fn settle(&self, rt: RouterTicket) -> Result<RoutedOutput, ServeError> {
        let mut span = span_in(self.registry.clone(), "net.settle", "net");
        span.set_trace(rt.ticket.id());
        let RouterTicket {
            model,
            tenant,
            deadline,
            spare,
            shard,
            ticket,
            submitted,
        } = rt;
        let hedge_cfg = self.hedge;
        let resolved: Result<RoutedOutput, ServeError> = 'resolve: {
            let Some(cfg) = hedge_cfg else {
                break 'resolve ticket.wait().map(|output| RoutedOutput {
                    output,
                    shard,
                    hedged: false,
                });
            };
            // The risk threshold counts from submission, not from this
            // call: under pipelining a ticket may have burned its whole
            // budget queued in the shard before its settle turn arrives.
            let budget = cfg.after.saturating_sub(submitted.elapsed());
            if let Some(result) = ticket.poll(budget) {
                break 'resolve result.map(|output| RoutedOutput {
                    output,
                    shard,
                    hedged: false,
                });
            }
            // Primary is past the risk threshold: hedge to the next
            // preferred shard, racing the two tickets.
            let backup = self
                .plan(model, tenant)
                .into_iter()
                .find(|&s| s != shard)
                .and_then(|s| {
                    let cloud = spare?;
                    let ticket = self.submit_to_shard(s, model, cloud, deadline).ok()?;
                    self.registry.incr(metrics::HEDGES, 1);
                    Some((s, ticket))
                });
            let Some((hedge_shard, hedge_ticket)) = backup else {
                break 'resolve ticket.wait().map(|output| RoutedOutput {
                    output,
                    shard,
                    hedged: false,
                });
            };
            let mut primary_err: Option<ServeError> = None;
            let mut hedge_err: Option<ServeError> = None;
            loop {
                if primary_err.is_none() {
                    match ticket.poll(cfg.poll) {
                        Some(Ok(output)) => {
                            break 'resolve Ok(RoutedOutput {
                                output,
                                shard,
                                hedged: false,
                            });
                        }
                        Some(Err(err)) => primary_err = Some(err),
                        None => {}
                    }
                }
                if hedge_err.is_none() {
                    match hedge_ticket.poll(cfg.poll) {
                        Some(Ok(output)) => {
                            self.registry.incr(metrics::HEDGE_WINS, 1);
                            break 'resolve Ok(RoutedOutput {
                                output,
                                shard: hedge_shard,
                                hedged: true,
                            });
                        }
                        Some(Err(err)) => hedge_err = Some(err),
                        None => {}
                    }
                }
                if let (Some(p), Some(_h)) = (&primary_err, &hedge_err) {
                    // Both legs failed; the primary's error names the shard
                    // the policy actually picked.
                    break 'resolve Err(p.clone());
                }
            }
        };
        if let Ok(out) = &resolved {
            self.registry.incr(metrics::COMPLETED, 1);
            self.registry.observe_us_tagged(
                metrics::E2E_US,
                submitted.elapsed().as_micros() as u64,
                out.output.request_id,
            );
        }
        resolved
    }

    /// Graceful shutdown of every shard (drain queues, join workers).
    pub fn shutdown(&self) {
        for engine in &self.shards {
            engine.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgepc_data::bunny_with_points;

    fn tiny_cfgs(n: usize) -> Vec<EngineConfig> {
        (0..n).map(|_| EngineConfig::new(1)).collect()
    }

    fn specs() -> Vec<ModelSpec> {
        vec![ModelSpec::pointnetpp_tiny(4)]
    }

    #[test]
    fn least_loaded_submits_and_settles() {
        let router = Router::new(tiny_cfgs(2), specs(), RoutePolicy::LeastLoaded, None);
        let cloud = bunny_with_points(64, 1);
        let rt = router.submit(0, 7, cloud, None).expect("admitted");
        let out = router.settle(rt).expect("resolved");
        assert!(!out.hedged);
        assert!(out.shard < 2);
        router.shutdown();
    }

    #[test]
    fn tenant_hash_is_sticky() {
        let router = Router::new(tiny_cfgs(3), specs(), RoutePolicy::TenantHash, None);
        for tenant in 0..32u64 {
            let first = router.route_for(0, tenant).expect("routed");
            for _ in 0..4 {
                assert_eq!(router.route_for(0, tenant), Some(first));
            }
        }
        // Tenants spread across shards rather than piling on one.
        let mut seen = [false; 3];
        for tenant in 0..64u64 {
            if let Some(s) = router.route_for(0, tenant) {
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all shards own some tenants");
        router.shutdown();
    }

    #[test]
    fn replica_groups_constrain_placement() {
        let specs = vec![ModelSpec::pointnetpp_tiny(4), ModelSpec::pointnetpp_tiny(8)];
        let router = Router::new(tiny_cfgs(3), specs, RoutePolicy::LeastLoaded, None)
            .with_groups(vec![vec![0, 1], vec![2]]);
        for tenant in 0..16 {
            let s = router.route_for(0, tenant).expect("model 0 routed");
            assert!(s <= 1, "model 0 stays in its group");
            assert_eq!(router.route_for(1, tenant), Some(2));
        }
        let rt = router
            .submit(1, 3, bunny_with_points(64, 2), None)
            .expect("admitted");
        let out = router.settle(rt).expect("resolved");
        assert_eq!(out.shard, 2);
        router.shutdown();
    }

    #[test]
    fn unknown_model_is_typed() {
        let router = Router::new(tiny_cfgs(1), specs(), RoutePolicy::LeastLoaded, None);
        let err = router
            .submit(9, 0, bunny_with_points(64, 3), None)
            .expect_err("unknown model");
        assert!(matches!(err, ServeError::UnknownModel { index: 9, .. }));
        router.shutdown();
    }

    #[test]
    fn full_shards_shed_with_failover_first() {
        // Capacity-zero shards refuse everything; the router must fail
        // over through both and then shed, not hang.
        let registry = Arc::new(edgepc_trace::Registry::new());
        edgepc_trace::with_registry(registry.clone(), || {
            let cfgs = (0..2)
                .map(|_| {
                    let mut c = EngineConfig::new(1);
                    c.queue_capacity = 0;
                    c
                })
                .collect();
            let router = Router::new(cfgs, specs(), RoutePolicy::LeastLoaded, None);
            let err = router
                .submit(0, 0, bunny_with_points(64, 4), None)
                .expect_err("shed");
            assert!(matches!(err, ServeError::QueueFull { .. }));
            assert_eq!(registry.counter(crate::metrics::SHED), 1);
            assert_eq!(registry.counter(crate::metrics::FAILOVERS), 1);
            router.shutdown();
        });
    }
}
