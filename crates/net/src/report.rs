//! The `results/net.json` document.
//!
//! Schema (`"schema": "edgepc-net"`, version 1; EP005 pins both):
//!
//! ```json
//! {
//!   "schema": "edgepc-net",
//!   "schema_version": 1,
//!   "load": {"connections": C, "requests": N, "rate_rps": R,
//!            "pattern": "burst", "seed": S, "points": P, "tenants": T,
//!            "deadline_ms": D, "policy": "least_loaded",
//!            "hedge_after_ms": H | null,
//!            "chaos_slow_shard_ms": M | null,
//!            "workers_per_shard": W, "queue_capacity": Q},
//!   "sweep": [
//!     {"shards": K, "wall_ms": T, "throughput_rps": X,
//!      "outcome": {"sent": n, "completed": n, "shed": n, "expired": n,
//!                  "rejected": n, "lost": n},
//!      "hedges": {"attempted": n, "wins": n, "hedged_responses": n},
//!      "slo": {"in_deadline": n, "attainment": A},
//!      "latency_ms": {"p50": .., "p95": .., "p99": .., "mean": ..,
//!                     "min": .., "max": ..} | null,
//!      "per_shard": [{"shard": i, "completed": n,
//!                     "throughput_rps": X}, ..]}
//!   ]
//! }
//! ```
//!
//! Latencies are measured **client-side** and so include wire time, not
//! just engine time; `attainment` is `in_deadline / sent` (shed and lost
//! requests count against the SLO). Consumers must ignore unknown fields
//! (additive evolution); removing or renaming fields bumps
//! `schema_version`.

use edgepc_perf::Stats;
use edgepc_trace::json::fmt_f64;

use crate::netgen::{NetReport, NetRow};

/// The document's `schema` field.
pub const SCHEMA_NAME: &str = "edgepc-net";
/// The current `schema_version`.
pub const SCHEMA_VERSION: u32 = 1;

fn quantiles_json(stats: &Option<Stats>) -> String {
    match stats {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
            fmt_f64(s.median_ms),
            fmt_f64(s.p95_ms),
            fmt_f64(s.p99_ms),
            fmt_f64(s.mean_ms),
            fmt_f64(s.min_ms),
            fmt_f64(s.max_ms),
        ),
    }
}

fn opt_ms(d: Option<std::time::Duration>) -> String {
    d.map(|d| fmt_f64(d.as_secs_f64() * 1000.0))
        .unwrap_or_else(|| "null".to_string())
}

fn row_json(row: &NetRow) -> String {
    let wall_s = row.outcome.wall.as_secs_f64();
    let per_shard = row
        .outcome
        .per_shard
        .iter()
        .enumerate()
        .map(|(shard, &completed)| {
            let rps = if wall_s > 0.0 {
                completed as f64 / wall_s
            } else {
                0.0
            };
            format!(
                "{{\"shard\":{shard},\"completed\":{completed},\"throughput_rps\":{}}}",
                fmt_f64(rps)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"shards\":{},\"wall_ms\":{},\"throughput_rps\":{},\
         \"outcome\":{{\"sent\":{},\"completed\":{},\"shed\":{},\"expired\":{},\"rejected\":{},\"lost\":{}}},\
         \"hedges\":{{\"attempted\":{},\"wins\":{},\"hedged_responses\":{}}},\
         \"slo\":{{\"in_deadline\":{},\"attainment\":{}}},\
         \"latency_ms\":{},\
         \"per_shard\":[{}]}}",
        row.shards,
        fmt_f64(wall_s * 1000.0),
        fmt_f64(row.throughput_rps()),
        row.outcome.sent,
        row.outcome.completed,
        row.outcome.errors.shed,
        row.outcome.errors.expired,
        row.outcome.errors.other,
        row.outcome.lost,
        row.hedges_attempted,
        row.hedge_wins,
        row.outcome.hedged_responses,
        row.outcome.in_deadline,
        fmt_f64(row.attainment()),
        quantiles_json(&row.latency()),
        per_shard,
    )
}

/// Renders a sweep as the versioned net.json document.
pub fn net_json(report: &NetReport) -> String {
    let cfg = &report.config;
    let rows = report
        .rows
        .iter()
        .map(|r| format!("  {}", row_json(r)))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n\
         \"schema\":\"{SCHEMA_NAME}\",\n\
         \"schema_version\":{SCHEMA_VERSION},\n\
         \"load\":{{\"connections\":{},\"requests\":{},\"rate_rps\":{},\"pattern\":\"{}\",\
         \"seed\":{},\"points\":{},\"tenants\":{},\"deadline_ms\":{},\"policy\":\"{}\",\
         \"hedge_after_ms\":{},\"chaos_slow_shard_ms\":{},\"workers_per_shard\":{},\"queue_capacity\":{}}},\n\
         \"sweep\":[\n{}\n]\n\
         }}\n",
        cfg.connections,
        cfg.requests,
        fmt_f64(cfg.rate_rps),
        cfg.pattern.name(),
        cfg.seed,
        cfg.points,
        cfg.tenants,
        fmt_f64(cfg.deadline.as_secs_f64() * 1000.0),
        cfg.policy.name(),
        opt_ms(cfg.hedge_after),
        opt_ms(cfg.chaos_slow_shard),
        cfg.workers_per_shard,
        cfg.queue_capacity,
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use edgepc_trace::json::parse;

    use crate::netgen::{ClientOutcome, ErrTally, NetgenConfig};

    fn report() -> NetReport {
        NetReport {
            config: NetgenConfig::default(),
            rows: vec![NetRow {
                shards: 2,
                hedges_attempted: 3,
                hedge_wins: 2,
                outcome: ClientOutcome {
                    sent: 10,
                    completed: 8,
                    in_deadline: 7,
                    hedged_responses: 2,
                    errors: ErrTally {
                        shed: 1,
                        expired: 1,
                        other: 0,
                    },
                    lost: 0,
                    per_shard: vec![5, 3],
                    latencies_ms: vec![4.0, 5.0, 6.0, 9.0],
                    wall: Duration::from_millis(200),
                },
            }],
        }
    }

    #[test]
    fn document_parses_and_pins_schema() {
        let doc = net_json(&report());
        let v = parse(&doc).expect("valid json");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA_NAME));
        assert_eq!(
            v.get("schema_version").and_then(|s| s.as_f64()),
            Some(f64::from(SCHEMA_VERSION))
        );
        let sweep = v.get("sweep").and_then(|s| s.as_arr()).expect("sweep");
        assert_eq!(sweep.len(), 1);
        let row = &sweep[0];
        assert_eq!(row.get("shards").and_then(|x| x.as_f64()), Some(2.0));
        let hedges = row.get("hedges").expect("hedges block");
        assert_eq!(hedges.get("attempted").and_then(|x| x.as_f64()), Some(3.0));
        assert_eq!(hedges.get("wins").and_then(|x| x.as_f64()), Some(2.0));
        let slo = row.get("slo").expect("slo block");
        let attainment = slo
            .get("attainment")
            .and_then(|x| x.as_f64())
            .expect("ratio");
        assert!((attainment - 0.7).abs() < 1e-9);
        let per_shard = row
            .get("per_shard")
            .and_then(|s| s.as_arr())
            .expect("per_shard");
        assert_eq!(per_shard.len(), 2);
        assert_eq!(
            per_shard[0].get("completed").and_then(|x| x.as_f64()),
            Some(5.0)
        );
        let latency = row.get("latency_ms").expect("latency block");
        assert_eq!(latency.get("p50").and_then(|x| x.as_f64()), Some(5.5));
    }

    #[test]
    fn empty_latency_serializes_as_null() {
        let mut r = report();
        r.rows[0].outcome.latencies_ms.clear();
        let doc = net_json(&r);
        let v = parse(&doc).expect("valid json");
        let sweep = v.get("sweep").and_then(|s| s.as_arr()).expect("sweep");
        assert!(sweep[0].get("latency_ms").is_some());
        assert_eq!(sweep[0].get("latency_ms").and_then(|x| x.as_f64()), None);
    }
}
