//! Network-tier scenarios for the workspace benchmark harness.
//!
//! Same placement logic as serve's scenarios: they live here because
//! they need the router and front end, and `edgepc-net` already depends
//! on `edgepc-perf` for [`edgepc_perf::Stats`]. `bench_all` chains them
//! after the serving scenarios.
//!
//! * `net.proto.n2048` — pure codec cost: encode + decode one 2048-point
//!   request frame. No sockets; isolates serialization from transport.
//! * `net.loopback.s2.c2.n128` — transport cost: a 2-shard front end on a
//!   loopback socket, two persistent connections pipelining 8 requests
//!   each per iteration. Measures the full wire path (framing, kernel
//!   round-trip, routing, settle) minus model time that `serve.*`
//!   already prices.
//!
//! The loopback scenario keeps its server and connections alive across
//! runner iterations — startup is not what we are measuring.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use edgepc_data::bunny_with_points;
use edgepc_geom::{required, OpCounts};
use edgepc_perf::Scenario;
use edgepc_serve::{EngineConfig, ModelSpec};

use crate::proto::{self, decode_body, encode_request, Frame, FrameRead, RequestFrame};
use crate::router::{RoutePolicy, Router};
use crate::server::{NetConfig, NetServer};

const PIPELINED: usize = 8;

fn request(points: usize, seq: u64) -> RequestFrame {
    RequestFrame {
        seq,
        trace_id: 0,
        model: 0,
        tenant: seq % 4,
        deadline_us: 0,
        points: bunny_with_points(points, 0xca_u64.wrapping_add(seq))
            .points()
            .to_vec(),
    }
}

struct Loopback {
    // Dropped last; held to keep the listener and shards alive.
    _server: NetServer,
    conns: Vec<TcpStream>,
}

fn loopback(shards: usize) -> Loopback {
    let cfgs = (0..shards)
        .map(|_| {
            let mut c = EngineConfig::new(1);
            c.queue_capacity = 64;
            c
        })
        .collect();
    let router = Arc::new(Router::new(
        cfgs,
        vec![ModelSpec::pointnetpp_tiny(4)],
        RoutePolicy::LeastLoaded,
        None,
    ));
    let server = required(
        NetServer::start(router, "127.0.0.1:0", NetConfig::default()).ok(),
        "bench server must bind",
    );
    let conns = (0..2)
        .map(|_| {
            let s = required(
                TcpStream::connect(server.local_addr()).ok(),
                "bench conn must connect",
            );
            let _ = s.set_nodelay(true);
            s
        })
        .collect();
    Loopback {
        _server: server,
        conns,
    }
}

/// Pipelines `PIPELINED` pre-encoded requests down each connection and
/// reads every response back.
fn drive(lb: &mut Loopback, frames: &[Vec<u8>]) {
    for conn in &mut lb.conns {
        for frame in frames {
            required(conn.write_all(frame).ok(), "bench write must succeed");
        }
    }
    for conn in &mut lb.conns {
        for _ in frames {
            let body = required(
                match proto::read_frame(conn, proto::DEFAULT_MAX_FRAME) {
                    Ok(FrameRead::Body(b)) => Some(b),
                    _ => None,
                },
                "bench response must arrive intact",
            );
            let ok = required(
                match decode_body(&body) {
                    Ok(Frame::Ok(ok)) => Some(ok),
                    _ => None,
                },
                "bench response must be logits",
            );
            assert!(!ok.logits.is_empty());
        }
    }
}

/// The two network benchmark scenarios (see module docs).
pub fn net_scenarios() -> Vec<Scenario> {
    let mut lb: Option<(Loopback, Vec<Vec<u8>>)> = None;
    vec![
        Scenario::new("net.proto.n2048", 2048, move || {
            let req = request(2048, 7);
            let frame = encode_request(&req);
            // Frame = 4-byte length prefix + body; decode takes the body.
            let decoded = required(
                match decode_body(&frame[4..]) {
                    Ok(Frame::Request(r)) => Some(r),
                    _ => None,
                },
                "bench frame must round-trip as a request",
            );
            assert_eq!(decoded.points.len(), req.points.len());
            (OpCounts::ZERO, None)
        }),
        Scenario::new("net.loopback.s2.c2.n128", 128, move || {
            let (lb, frames) = lb.get_or_insert_with(|| {
                let frames = (0..PIPELINED as u64)
                    .map(|i| encode_request(&request(128, i)))
                    .collect();
                (loopback(2), frames)
            });
            drive(lb, frames);
            (OpCounts::ZERO, None)
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_ids_are_stable() {
        let ids: Vec<_> = net_scenarios().iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids, ["net.proto.n2048", "net.loopback.s2.c2.n128"]);
    }
}
