//! The wire protocol: tiny, length-prefixed, binary, versioned.
//!
//! Every frame is a `u32` little-endian body length followed by exactly
//! that many body bytes. The body starts with a fixed header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"EPCN"
//! 4       1     version (currently 1)
//! 5       1     kind    (1 = request, 2 = ok response, 3 = error response)
//! 6       8     trace id (LE; 0 from clients, server-assigned in responses)
//! ```
//!
//! The trace id in the header is how flight-recorder timelines span the
//! wire: the server stamps the engine-assigned trace id into every
//! response, so a client (or netgen) can take a slow response straight to
//! `spans_for_trace` / a flightrec dump and see the same request's
//! enqueue → batch → exec timeline inside the shard.
//!
//! Kind-specific payloads (all integers little-endian):
//!
//! * request: `seq u64, model u16, tenant u64, deadline_us u64 (0 = none),
//!   n_points u32, n_points × (x f32, y f32, z f32)`
//! * ok: `seq u64, shard u16, hedged u8, queue_us u64, total_us u64,
//!   rows u32, cols u32, rows*cols × f32 logits`
//! * error: `seq u64, code u8, a u64, b u64` (a/b are code-specific
//!   details, e.g. capacity for `Shed`)
//!
//! Decoding is **total**: every malformed input — truncated header, bad
//! magic, unknown version or kind, declared lengths that disagree with
//! the body — comes back as a typed [`WireError`], never a panic. Floats
//! ride as `to_le_bytes`/`from_le_bytes`, which round-trips every bit
//! pattern exactly; that is what makes determinism survive the wire.

use std::io::{self, Read};

use edgepc_geom::Point3;

/// Frame body magic: the first four body bytes of every frame.
pub const MAGIC: [u8; 4] = *b"EPCN";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Default per-frame body bound (4 MiB ≈ a 349k-point cloud), enforced on
/// both read (before buffering) and write.
pub const DEFAULT_MAX_FRAME: u32 = 4 << 20;

const HEADER_LEN: usize = 14;

const KIND_REQUEST: u8 = 1;
const KIND_OK: u8 = 2;
const KIND_ERR: u8 = 3;

/// Typed decoding failure. Everything malformed lands here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before a declared field.
    Truncated { needed: usize, got: usize },
    /// The length prefix exceeds the negotiated max frame size.
    FrameTooLarge { len: u32, max: u32 },
    /// The first four body bytes were not `b"EPCN"`.
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Declared element counts disagree with the remaining body length.
    LengthMismatch { declared: usize, actual: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds max {max}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::LengthMismatch { declared, actual } => {
                write!(f, "declared payload of {declared} bytes, body has {actual}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes carried by error-response frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// Every eligible shard's queue was full; `a` = last shard's capacity.
    Shed = 1,
    /// The deadline passed while queued; `a` = waited µs, `b` = deadline µs.
    DeadlineExpired = 2,
    /// Model index out of range; `a` = requested index, `b` = model count.
    UnknownModel = 3,
    /// The request frame itself was malformed.
    Malformed = 4,
    /// The router (or every eligible shard) is shutting down.
    ShuttingDown = 5,
    /// Fewer points than the model's floor; `a` = sent, `b` = required.
    TooFewPoints = 6,
    /// The server is at its connection cap.
    Busy = 7,
    /// Catch-all for internal failures (worker lost, etc.).
    Internal = 8,
}

impl ErrCode {
    /// Total decode; unknown codes collapse to `Internal` so old clients
    /// survive new servers.
    pub fn from_u8(code: u8) -> ErrCode {
        match code {
            1 => ErrCode::Shed,
            2 => ErrCode::DeadlineExpired,
            3 => ErrCode::UnknownModel,
            4 => ErrCode::Malformed,
            5 => ErrCode::ShuttingDown,
            6 => ErrCode::TooFewPoints,
            7 => ErrCode::Busy,
            _ => ErrCode::Internal,
        }
    }
}

/// A decoded inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the response. The
    /// protocol allows pipelining, so responses can arrive out of order.
    pub seq: u64,
    /// Trace id from the header; clients send 0.
    pub trace_id: u64,
    /// Index into the router's model list.
    pub model: u16,
    /// Tenant id: the consistent-hash routing key.
    pub tenant: u64,
    /// Deadline in microseconds, measured from server-side admission
    /// (wire time is not charged against it); 0 means no deadline.
    pub deadline_us: u64,
    /// The point payload.
    pub points: Vec<Point3>,
}

/// A decoded successful response.
#[derive(Debug, Clone, PartialEq)]
pub struct OkFrame {
    /// Echo of the request's `seq`.
    pub seq: u64,
    /// Server-assigned trace id (the engine ticket id).
    pub trace_id: u64,
    /// Shard that produced the logits.
    pub shard: u16,
    /// Whether this result came from a hedged retry rather than the
    /// primary submission.
    pub hedged: bool,
    /// Microseconds the request waited queued inside the shard.
    pub queue_us: u64,
    /// Microseconds from shard admission to completion.
    pub total_us: u64,
    /// Logits, row-major `rows × cols`.
    pub rows: u32,
    /// Logit row width.
    pub cols: u32,
    /// `rows * cols` values.
    pub logits: Vec<f32>,
}

/// A decoded error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrFrame {
    /// Echo of the request's `seq` (0 when the request was too mangled to
    /// recover one).
    pub seq: u64,
    /// Server-assigned trace id, when one was allocated before failing.
    pub trace_id: u64,
    /// What went wrong.
    pub code: ErrCode,
    /// Code-specific detail (see [`ErrCode`]).
    pub a: u64,
    /// Second code-specific detail.
    pub b: u64,
}

/// Any decoded frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Request(RequestFrame),
    Ok(OkFrame),
    Err(ErrFrame),
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: self.buf.len(),
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated {
            needed: end,
            got: self.buf.len(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
}

fn push_header(out: &mut Vec<u8>, kind: u8, trace_id: u64) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&trace_id.to_le_bytes());
}

/// Wraps a finished body in the length prefix.
fn finish(mut body: Vec<u8>) -> Vec<u8> {
    let len = (body.len().saturating_sub(4)) as u32;
    body[0..4].copy_from_slice(&len.to_le_bytes());
    body
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &RequestFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + 30 + req.points.len() * 12);
    out.extend_from_slice(&[0; 4]);
    push_header(&mut out, KIND_REQUEST, req.trace_id);
    out.extend_from_slice(&req.seq.to_le_bytes());
    out.extend_from_slice(&req.model.to_le_bytes());
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.extend_from_slice(&req.deadline_us.to_le_bytes());
    out.extend_from_slice(&(req.points.len() as u32).to_le_bytes());
    for p in &req.points {
        out.extend_from_slice(&p.x.to_le_bytes());
        out.extend_from_slice(&p.y.to_le_bytes());
        out.extend_from_slice(&p.z.to_le_bytes());
    }
    finish(out)
}

/// Encodes a successful response as a complete frame.
pub fn encode_ok(ok: &OkFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + 35 + ok.logits.len() * 4);
    out.extend_from_slice(&[0; 4]);
    push_header(&mut out, KIND_OK, ok.trace_id);
    out.extend_from_slice(&ok.seq.to_le_bytes());
    out.extend_from_slice(&ok.shard.to_le_bytes());
    out.push(u8::from(ok.hedged));
    out.extend_from_slice(&ok.queue_us.to_le_bytes());
    out.extend_from_slice(&ok.total_us.to_le_bytes());
    out.extend_from_slice(&ok.rows.to_le_bytes());
    out.extend_from_slice(&ok.cols.to_le_bytes());
    for v in &ok.logits {
        out.extend_from_slice(&v.to_le_bytes());
    }
    finish(out)
}

/// Encodes an error response as a complete frame.
pub fn encode_err(err: &ErrFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + 25);
    out.extend_from_slice(&[0; 4]);
    push_header(&mut out, KIND_ERR, err.trace_id);
    out.extend_from_slice(&err.seq.to_le_bytes());
    out.push(err.code as u8);
    out.extend_from_slice(&err.a.to_le_bytes());
    out.extend_from_slice(&err.b.to_le_bytes());
    finish(out)
}

/// Decodes one frame body (the bytes after the length prefix). Total:
/// every malformed input is a typed [`WireError`].
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut cur = Cursor::new(body);
    let magic = cur.take(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic([
            magic[0], magic[1], magic[2], magic[3],
        ]));
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = cur.u8()?;
    let trace_id = cur.u64()?;
    match kind {
        KIND_REQUEST => {
            let seq = cur.u64()?;
            let model = cur.u16()?;
            let tenant = cur.u64()?;
            let deadline_us = cur.u64()?;
            let n = cur.u32()? as usize;
            let declared = n.saturating_mul(12);
            if cur.remaining() != declared {
                return Err(WireError::LengthMismatch {
                    declared,
                    actual: cur.remaining(),
                });
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let x = cur.f32()?;
                let y = cur.f32()?;
                let z = cur.f32()?;
                points.push(Point3 { x, y, z });
            }
            Ok(Frame::Request(RequestFrame {
                seq,
                trace_id,
                model,
                tenant,
                deadline_us,
                points,
            }))
        }
        KIND_OK => {
            let seq = cur.u64()?;
            let shard = cur.u16()?;
            let hedged = cur.u8()? != 0;
            let queue_us = cur.u64()?;
            let total_us = cur.u64()?;
            let rows = cur.u32()?;
            let cols = cur.u32()?;
            let n = (rows as usize).saturating_mul(cols as usize);
            let declared = n.saturating_mul(4);
            if cur.remaining() != declared {
                return Err(WireError::LengthMismatch {
                    declared,
                    actual: cur.remaining(),
                });
            }
            let mut logits = Vec::with_capacity(n);
            for _ in 0..n {
                logits.push(cur.f32()?);
            }
            Ok(Frame::Ok(OkFrame {
                seq,
                trace_id,
                shard,
                hedged,
                queue_us,
                total_us,
                rows,
                cols,
                logits,
            }))
        }
        KIND_ERR => {
            let seq = cur.u64()?;
            let code = ErrCode::from_u8(cur.u8()?);
            let a = cur.u64()?;
            let b = cur.u64()?;
            if cur.remaining() != 0 {
                return Err(WireError::LengthMismatch {
                    declared: 0,
                    actual: cur.remaining(),
                });
            }
            Ok(Frame::Err(ErrFrame {
                seq,
                trace_id,
                code,
                a,
                b,
            }))
        }
        other => Err(WireError::BadKind(other)),
    }
}

/// How a blocking frame read ended.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete body (length prefix stripped, bounds already checked).
    Body(Vec<u8>),
    /// Clean EOF on a frame boundary (peer finished sending).
    Eof,
    /// The peer violated framing: EOF mid-frame or an oversize prefix.
    Malformed(WireError),
}

/// Reads one complete frame from a blocking stream. Used by clients (and
/// tests); the server's reader has its own loop so it can interleave
/// stop-flag checks with read timeouts.
pub fn read_frame(stream: &mut impl Read, max_frame: u32) -> io::Result<FrameRead> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = stream.read(&mut prefix[got..])?;
        if n == 0 {
            return Ok(if got == 0 {
                FrameRead::Eof
            } else {
                FrameRead::Malformed(WireError::Truncated { needed: 4, got })
            });
        }
        got += n;
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_frame {
        return Ok(FrameRead::Malformed(WireError::FrameTooLarge {
            len,
            max: max_frame,
        }));
    }
    let mut body = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < body.len() {
        let n = stream.read(&mut body[filled..])?;
        if n == 0 {
            return Ok(FrameRead::Malformed(WireError::Truncated {
                needed: body.len(),
                got: filled,
            }));
        }
        filled += n;
    }
    Ok(FrameRead::Body(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            seq: 7,
            trace_id: 0,
            model: 2,
            tenant: 0xDEAD_BEEF,
            deadline_us: 250_000,
            points: vec![
                Point3 {
                    x: 1.5,
                    y: -2.25,
                    z: 0.0,
                },
                Point3 {
                    x: f32::MIN_POSITIVE,
                    y: -0.0,
                    z: 123.456,
                },
            ],
        }
    }

    fn body_of(frame: &[u8]) -> &[u8] {
        &frame[4..]
    }

    #[test]
    fn request_roundtrip_is_bit_exact() {
        let req = sample_request();
        let frame = encode_request(&req);
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        assert_eq!(len as usize, frame.len() - 4);
        match decode_body(body_of(&frame)) {
            Ok(Frame::Request(decoded)) => {
                assert_eq!(decoded.seq, req.seq);
                assert_eq!(decoded.tenant, req.tenant);
                assert_eq!(decoded.deadline_us, req.deadline_us);
                for (a, b) in decoded.points.iter().zip(&req.points) {
                    assert_eq!(a.x.to_bits(), b.x.to_bits());
                    assert_eq!(a.y.to_bits(), b.y.to_bits());
                    assert_eq!(a.z.to_bits(), b.z.to_bits());
                }
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn ok_and_err_roundtrip() {
        let ok = OkFrame {
            seq: 9,
            trace_id: 42,
            shard: 1,
            hedged: true,
            queue_us: 10,
            total_us: 20,
            rows: 1,
            cols: 3,
            logits: vec![0.25, -1.0, f32::NAN],
        };
        match decode_body(body_of(&encode_ok(&ok))) {
            Ok(Frame::Ok(d)) => {
                assert_eq!(d.seq, 9);
                assert_eq!(d.trace_id, 42);
                assert!(d.hedged);
                assert_eq!(d.logits[0].to_bits(), ok.logits[0].to_bits());
                assert_eq!(d.logits[2].to_bits(), ok.logits[2].to_bits());
            }
            other => panic!("expected ok, got {other:?}"),
        }
        let err = ErrFrame {
            seq: 3,
            trace_id: 0,
            code: ErrCode::Shed,
            a: 64,
            b: 0,
        };
        assert_eq!(decode_body(body_of(&encode_err(&err))), Ok(Frame::Err(err)));
    }

    #[test]
    fn zero_point_request_is_decodable() {
        let mut req = sample_request();
        req.points.clear();
        match decode_body(body_of(&encode_request(&req))) {
            Ok(Frame::Request(d)) => assert!(d.points.is_empty()),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        let frame = encode_request(&sample_request());
        let body = body_of(&frame);

        // Truncation at every prefix length decodes to an error, never a
        // panic.
        for cut in 0..body.len() {
            assert!(decode_body(&body[..cut]).is_err(), "cut at {cut}");
        }

        let mut bad = body.to_vec();
        bad[0] = b'X';
        assert!(matches!(decode_body(&bad), Err(WireError::BadMagic(_))));

        let mut bad = body.to_vec();
        bad[4] = 99;
        assert!(matches!(decode_body(&bad), Err(WireError::BadVersion(99))));

        let mut bad = body.to_vec();
        bad[5] = 77;
        assert!(matches!(decode_body(&bad), Err(WireError::BadKind(77))));

        // Point count that disagrees with the body length.
        let mut bad = body.to_vec();
        let count_off = HEADER_LEN + 8 + 2 + 8 + 8;
        bad[count_off..count_off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            decode_body(&bad),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        let frame = encode_request(&sample_request());

        let mut ok = io::Cursor::new(frame.clone());
        assert!(matches!(
            read_frame(&mut ok, DEFAULT_MAX_FRAME),
            Ok(FrameRead::Body(_))
        ));

        let mut empty = io::Cursor::new(Vec::new());
        assert!(matches!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME),
            Ok(FrameRead::Eof)
        ));

        // EOF mid-prefix and mid-body are both framing violations.
        let mut cut = io::Cursor::new(frame[..2].to_vec());
        assert!(matches!(
            read_frame(&mut cut, DEFAULT_MAX_FRAME),
            Ok(FrameRead::Malformed(WireError::Truncated { .. }))
        ));
        let mut cut = io::Cursor::new(frame[..frame.len() - 3].to_vec());
        assert!(matches!(
            read_frame(&mut cut, DEFAULT_MAX_FRAME),
            Ok(FrameRead::Malformed(WireError::Truncated { .. }))
        ));

        let mut oversize = Vec::new();
        oversize.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = io::Cursor::new(oversize);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Ok(FrameRead::Malformed(WireError::FrameTooLarge { .. }))
        ));
    }
}
