//! Drives the multi-connection open-loop client against a sharded front
//! end and writes `results/net.json`.
//!
//! ```text
//! netgen [--shards 1,2,3] [--connections C] [--requests N] [--rate RPS]
//!        [--pattern uniform|poisson|burst] [--seed S] [--points P]
//!        [--tenants T] [--deadline-ms D] [--policy least|hash]
//!        [--hedge-ms H] [--workers W] [--capacity Q] [--batch B]
//!        [--chaos-slow-ms M] [--smoke] [--out PATH] [--addr ADDR]
//! ```
//!
//! By default each sweep entry self-hosts: it builds that many engine
//! shards behind a router and front end on an ephemeral loopback port and
//! drives them over real sockets, so the report's hedge counts come from
//! the run's own isolated metrics registry. `--addr ADDR` instead drives
//! one row against an already-running server (shard count unknown to the
//! client; hedge accounting then reflects only response flags).
//!
//! `--hedge-ms 0` disables hedging. `--chaos-slow-ms M` stalls shard 0's
//! workers by M ms per batch in self-hosted rows — the degraded-operation
//! row CI's chaos checks look at. `--smoke` shrinks the run for CI (one
//! 2-shard row, 96 requests, small clouds).
#![allow(clippy::print_stderr)]

use std::time::Duration;

use edgepc_net::{report, run_against, run_sweep, NetReport, NetRow, NetgenConfig, RoutePolicy};
use edgepc_serve::ArrivalPattern;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => eprintln!("{summary}"),
        Err(msg) => {
            eprintln!("netgen: {msg}");
            std::process::exit(2);
        }
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn run(args: &[String]) -> Result<String, String> {
    let mut cfg = NetgenConfig::default();
    let mut out: Option<std::path::PathBuf> = None;
    let mut addr: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                let raw: String = parse_value(arg, it.next())?;
                cfg.shards = raw
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("--shards: cannot parse {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if cfg.shards.is_empty() || cfg.shards.contains(&0) {
                    return Err("--shards needs positive counts, e.g. 1,2,3".to_string());
                }
            }
            "--connections" => cfg.connections = parse_value(arg, it.next())?,
            "--requests" => cfg.requests = parse_value(arg, it.next())?,
            "--rate" => cfg.rate_rps = parse_value(arg, it.next())?,
            "--pattern" => {
                let name: String = parse_value(arg, it.next())?;
                cfg.pattern = match name.as_str() {
                    "uniform" => ArrivalPattern::Uniform,
                    "poisson" => ArrivalPattern::Poisson,
                    "burst" => ArrivalPattern::Burst { size: 32 },
                    other => return Err(format!("--pattern: unknown pattern {other:?}")),
                };
            }
            "--seed" => cfg.seed = parse_value(arg, it.next())?,
            "--points" => cfg.points = parse_value(arg, it.next())?,
            "--tenants" => cfg.tenants = parse_value(arg, it.next())?,
            "--deadline-ms" => {
                cfg.deadline = Duration::from_millis(parse_value(arg, it.next())?);
            }
            "--policy" => {
                let name: String = parse_value(arg, it.next())?;
                cfg.policy = match name.as_str() {
                    "least" | "least_loaded" => RoutePolicy::LeastLoaded,
                    "hash" | "tenant_hash" => RoutePolicy::TenantHash,
                    other => return Err(format!("--policy: unknown policy {other:?}")),
                };
            }
            "--hedge-ms" => {
                let ms: u64 = parse_value(arg, it.next())?;
                cfg.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--workers" => cfg.workers_per_shard = parse_value(arg, it.next())?,
            "--capacity" => cfg.queue_capacity = parse_value(arg, it.next())?,
            "--batch" => cfg.max_batch = parse_value(arg, it.next())?,
            "--chaos-slow-ms" => {
                let ms: u64 = parse_value(arg, it.next())?;
                cfg.chaos_slow_shard = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--smoke" => cfg = NetgenConfig::smoke(),
            "--out" => {
                let path: String = parse_value(arg, it.next())?;
                out = Some(std::path::PathBuf::from(path));
            }
            "--addr" => addr = Some(parse_value(arg, it.next())?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if cfg.connections == 0 || cfg.requests == 0 {
        return Err("--connections and --requests must be at least 1".to_string());
    }
    if cfg.points < 64 {
        return Err("--points must be at least 64 (tiny PointNet++ floor)".to_string());
    }

    let sweep = match &addr {
        Some(addr) => {
            let addr = addr
                .parse()
                .map_err(|_| format!("--addr: cannot parse {addr:?}"))?;
            let outcome = run_against(addr, &cfg).map_err(|e| format!("drive {addr}: {e}"))?;
            // External server: shard count unknown, hedge accounting from
            // response flags only.
            NetReport {
                config: cfg.clone(),
                rows: vec![NetRow {
                    shards: outcome.per_shard.len(),
                    hedges_attempted: outcome.hedged_responses as u64,
                    hedge_wins: outcome.hedged_responses as u64,
                    outcome,
                }],
            }
        }
        None => run_sweep(&cfg).map_err(|e| format!("sweep: {e}"))?,
    };

    let doc = report::net_json(&sweep);
    let path = match out {
        Some(path) => {
            let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| format!("--out: no file name in {}", path.display()))?;
            edgepc_serve::report::write_into(dir, name, &doc)
                .map_err(|e| format!("write {name}: {e}"))?
        }
        None => {
            edgepc_serve::report::write_into(&edgepc_serve::report::results_dir(), "net.json", &doc)
                .map_err(|e| format!("write net.json: {e}"))?
        }
    };

    let mut lines = Vec::with_capacity(sweep.rows.len() + 1);
    for row in &sweep.rows {
        let lat = row.latency();
        let p = |f: fn(&edgepc_perf::Stats) -> f64| lat.as_ref().map(f).unwrap_or(f64::NAN);
        lines.push(format!(
            "shards {}: {}/{} completed ({} shed, {} expired, {} rejected, {} lost) in {:.0} ms; \
             {:.1} rps; p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms; \
             hedges {}/{} won; attainment {:.3}",
            row.shards,
            row.outcome.completed,
            row.outcome.sent,
            row.outcome.errors.shed,
            row.outcome.errors.expired,
            row.outcome.errors.other,
            row.outcome.lost,
            row.outcome.wall.as_secs_f64() * 1000.0,
            row.throughput_rps(),
            p(|s| s.median_ms),
            p(|s| s.p95_ms),
            p(|s| s.p99_ms),
            row.hedge_wins,
            row.hedges_attempted,
            row.attainment(),
        ));
    }
    lines.push(format!("wrote {}", path.display()));
    Ok(lines.join("\n"))
}
