//! Lock ranks for the network tier.
//!
//! Mirrors the `[lock]` ranking in `LINT.toml` (EP006 cross-checks the
//! two). The net locks rank **below** every serve/trace lock: a
//! connection thread may hold nothing while it calls into a shard
//! (submit/settle release all net locks first by construction), but
//! ranking them first makes even an accidental overlap ascend.

/// `NetServer`'s connection-handle table.
pub(crate) const CONNS: u16 = 2;

/// `Router`'s shard-health state.
pub(crate) const ROUTER: u16 = 4;

/// A connection's bounded response pipeline (the backpressure point).
pub(crate) const PIPE: u16 = 6;
