//! Metric names the network tier publishes (`net.*` namespace).
//!
//! Everything lands in the `edgepc_trace` registry current when the
//! router/server was constructed, beside the `serve.*` metrics of the
//! shards it fronts — one registry snapshot (obsctl `registry`, the
//! telemetry endpoint, a flightrec dump) shows the whole path.

/// Counter: requests the router was asked to place (before any outcome).
pub const REQUESTS: &str = "net.requests";

/// Counter: requests that resolved with logits.
pub const COMPLETED: &str = "net.completed";

/// Counter: requests rejected because every eligible shard was full.
pub const SHED: &str = "net.shed";

/// Counter: submissions retried on another shard after the preferred one
/// refused (queue full or shutting down).
pub const FAILOVERS: &str = "net.failovers";

/// Counter: hedged retries launched (primary still unresolved past the
/// deadline-risk threshold).
pub const HEDGES: &str = "net.hedges";

/// Counter: hedged retries whose result arrived before the primary's.
pub const HEDGE_WINS: &str = "net.hedge_wins";

/// Counter: frames that failed wire-protocol decoding.
pub const MALFORMED: &str = "net.malformed";

/// Counter: connections accepted.
pub const CONNS_ACCEPTED: &str = "net.conns_accepted";

/// Counter: connections refused at the connection cap.
pub const CONNS_REFUSED: &str = "net.conns_refused";

/// Counter: request frames read off sockets.
pub const FRAMES_IN: &str = "net.frames_in";

/// Counter: response frames written to sockets.
pub const FRAMES_OUT: &str = "net.frames_out";

/// Counter: times a connection reader blocked on its full response
/// pipeline — the moment backpressure reaches the socket.
pub const BACKPRESSURE_WAITS: &str = "net.backpressure_waits";

/// Gauge: currently open connections.
pub const OPEN_CONNS: &str = "net.open_conns";

/// Histogram (µs, trace-tagged): server-side end-to-end latency, router
/// admission to resolution (hedges included).
pub const E2E_US: &str = "net.e2e";
