//! The TCP front end: persistent connections, pipelined requests,
//! socket-level backpressure.
//!
//! Each accepted connection gets two threads. The **reader** decodes
//! request frames, validates them (model index and point floor are
//! checked *before* anything reaches a shard), routes them through the
//! [`Router`], and enqueues the resulting tickets on a bounded
//! [`Pipe`]. The **writer** dequeues in FIFO order, settles each ticket
//! (hedging happens inside [`Router::settle`]), and writes the response
//! frame — so responses come back in request order per connection, while
//! up to `pipeline_depth` requests are in flight at once.
//!
//! Backpressure: when the shards fall behind, tickets pile up in the
//! pipe until the reader blocks on `enqueue_pending` and stops reading
//! the socket. The kernel receive buffer fills, TCP closes the window,
//! and the client stalls at `write()`. No queue in this path is
//! unbounded.
//!
//! Failure handling is total: malformed frames answer a typed error (or
//! close the connection when framing itself is lost), a connection at
//! the cap is refused with a `Busy` error frame, and a client vanishing
//! mid-request just tears its connection down. Nothing in this module
//! panics on network input (EP001 holds for this crate).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use edgepc_geom::guard::ranked_with;
use edgepc_geom::PointCloud;
use edgepc_serve::ServeError;
use edgepc_trace::{span_in, Registry};

use crate::lockrank;
use crate::metrics;
use crate::pipe::Pipe;
use crate::proto::{
    self, decode_body, encode_err, encode_ok, ErrCode, ErrFrame, Frame, OkFrame, RequestFrame,
};
use crate::router::{Router, RouterTicket};

/// Accept-loop poll interval (bounds stop latency and idle CPU).
const POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout: how often a blocked reader rechecks the
/// stop flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Front-end sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Largest accepted frame body; bigger length prefixes answer
    /// `Malformed` and close the connection.
    pub max_frame: u32,
    /// Connection cap; connections beyond it are refused with a typed
    /// `Busy` error frame.
    pub max_conns: usize,
    /// Pipelined requests allowed in flight per connection — the bound of
    /// the response pipe, i.e. the backpressure threshold.
    pub pipeline_depth: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame: proto::DEFAULT_MAX_FRAME,
            max_conns: 64,
            pipeline_depth: 32,
        }
    }
}

struct ConnTable {
    handles: Mutex<Vec<JoinHandle<()>>>,
    active: AtomicUsize,
}

impl ConnTable {
    /// Registers a connection thread, reaping already-finished handles so
    /// the table stays proportional to *live* connections.
    fn adopt_conn(&self, handle: JoinHandle<()>) {
        let mut handles = ranked_with(lockrank::CONNS, "net.conns", || {
            self.handles.lock().unwrap_or_else(PoisonError::into_inner)
        });
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
    }

    /// Takes every tracked handle (for join at shutdown).
    fn reap_conns(&self) -> Vec<JoinHandle<()>> {
        let mut handles = ranked_with(lockrank::CONNS, "net.conns", || {
            self.handles.lock().unwrap_or_else(PoisonError::into_inner)
        });
        std::mem::take(&mut **handles)
    }
}

/// A running front end. Stops (and joins all its threads) on drop or via
/// [`stop`](Self::stop). Shut the server down **before** shutting down
/// the router's shards so in-flight tickets can still settle.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<ConnTable>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting framed
    /// connections routed through `router`.
    pub fn start(router: Arc<Router>, addr: &str, config: NetConfig) -> io::Result<NetServer> {
        let registry = router.registry();
        let _span = span_in(registry.clone(), "net.server_start", "net");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable {
            handles: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
        });
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("net-accept".to_string())
                .spawn(move || accept_loop(&listener, &router, config, &registry, &stop, &conns))?
        };
        Ok(NetServer {
            addr: local,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets connections finish their pipelines, and
    /// joins every thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.conns.reap_conns() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    router: &Arc<Router>,
    config: NetConfig,
    registry: &Arc<Registry>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<ConnTable>,
) {
    let mut next_conn = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let active = conns.active.load(Ordering::Acquire);
                if active >= config.max_conns {
                    registry.incr(metrics::CONNS_REFUSED, 1);
                    let busy = encode_err(&ErrFrame {
                        seq: 0,
                        trace_id: 0,
                        code: ErrCode::Busy,
                        a: active as u64,
                        b: config.max_conns as u64,
                    });
                    let _ = stream.write_all(&busy);
                    continue;
                }
                conns.active.fetch_add(1, Ordering::AcqRel);
                registry.incr(metrics::CONNS_ACCEPTED, 1);
                registry.add_gauge(metrics::OPEN_CONNS, 1.0);
                let router = Arc::clone(router);
                let registry_c = Arc::clone(registry);
                let stop_c = Arc::clone(stop);
                let conns_c = Arc::clone(conns);
                let spawned = std::thread::Builder::new()
                    .name(format!("net-conn-{next_conn}"))
                    .spawn(move || {
                        run_connection(stream, &router, config, &registry_c, &stop_c);
                        conns_c.active.fetch_sub(1, Ordering::AcqRel);
                        registry_c.add_gauge(metrics::OPEN_CONNS, -1.0);
                    });
                next_conn += 1;
                match spawned {
                    Ok(handle) => conns.adopt_conn(handle),
                    Err(_) => {
                        conns.active.fetch_sub(1, Ordering::AcqRel);
                        registry.add_gauge(metrics::OPEN_CONNS, -1.0);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One unit of the per-connection response pipeline.
enum Pending {
    /// An already-encoded frame (validation/admission errors).
    Ready(Vec<u8>),
    /// A routed request awaiting settlement.
    Routed { seq: u64, ticket: RouterTicket },
}

/// How a stop-aware full read ended.
enum SockRead {
    /// `buf` is filled.
    Full,
    /// EOF before the first byte (clean close at a frame boundary when
    /// reading a prefix).
    CleanEof,
    /// EOF after at least one byte of the needed span — the peer died
    /// mid-frame.
    DirtyEof,
    /// The server is stopping.
    Stopped,
    /// Hard I/O error.
    Failed,
}

/// Fills `buf` from `stream`, treating read timeouts as a cue to recheck
/// the stop flag (the stream has a read timeout installed).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> SockRead {
    let mut got = 0usize;
    while got < buf.len() {
        if stop.load(Ordering::Acquire) {
            return SockRead::Stopped;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    SockRead::CleanEof
                } else {
                    SockRead::DirtyEof
                }
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return SockRead::Failed,
        }
    }
    SockRead::Full
}

fn run_connection(
    stream: TcpStream,
    router: &Arc<Router>,
    config: NetConfig,
    registry: &Arc<Registry>,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let pipe: Arc<Pipe<Pending>> = Arc::new(Pipe::new(config.pipeline_depth));
    let writer = {
        let pipe = Arc::clone(&pipe);
        let router = Arc::clone(router);
        let registry = Arc::clone(registry);
        std::thread::Builder::new()
            .name("net-writer".to_string())
            .spawn(move || writer_loop(write_half, &pipe, &router, &registry))
    };
    let Ok(writer) = writer else {
        return;
    };

    let mut read_half = stream;
    reader_loop(&mut read_half, router, config, registry, stop, &pipe);

    // Reader is done (EOF, malformed framing, or stop): close the pipe so
    // the writer drains what is queued and exits, then join it.
    pipe.close_pipe();
    let _ = writer.join();
}

fn reader_loop(
    stream: &mut TcpStream,
    router: &Arc<Router>,
    config: NetConfig,
    registry: &Arc<Registry>,
    stop: &AtomicBool,
    pipe: &Pipe<Pending>,
) {
    loop {
        let mut prefix = [0u8; 4];
        match read_full(stream, &mut prefix, stop) {
            SockRead::Full => {}
            SockRead::CleanEof | SockRead::Stopped => return,
            SockRead::DirtyEof | SockRead::Failed => {
                registry.incr(metrics::MALFORMED, 1);
                return;
            }
        }
        let len = u32::from_le_bytes(prefix);
        if len > config.max_frame {
            // Unreadable without buffering the oversize body; answer and
            // drop the connection (framing cannot be resynchronized).
            registry.incr(metrics::MALFORMED, 1);
            let err = encode_err(&ErrFrame {
                seq: 0,
                trace_id: 0,
                code: ErrCode::Malformed,
                a: len as u64,
                b: config.max_frame as u64,
            });
            let _ = pipe.enqueue_pending(Pending::Ready(err));
            return;
        }
        let mut body = vec![0u8; len as usize];
        match read_full(stream, &mut body, stop) {
            SockRead::Full => {}
            SockRead::Stopped => return,
            SockRead::CleanEof | SockRead::DirtyEof | SockRead::Failed => {
                // Mid-request disconnect: tear down cleanly.
                registry.incr(metrics::MALFORMED, 1);
                return;
            }
        }
        registry.incr(metrics::FRAMES_IN, 1);
        let pending = match decode_body(&body) {
            Ok(Frame::Request(req)) => route_request(router, req),
            Ok(_) => {
                // Clients must not send response frames.
                registry.incr(metrics::MALFORMED, 1);
                let err = encode_err(&ErrFrame {
                    seq: 0,
                    trace_id: 0,
                    code: ErrCode::Malformed,
                    a: 0,
                    b: 0,
                });
                let _ = pipe.enqueue_pending(Pending::Ready(err));
                return;
            }
            Err(_wire) => {
                registry.incr(metrics::MALFORMED, 1);
                let err = encode_err(&ErrFrame {
                    seq: 0,
                    trace_id: 0,
                    code: ErrCode::Malformed,
                    a: 0,
                    b: 0,
                });
                let _ = pipe.enqueue_pending(Pending::Ready(err));
                return;
            }
        };
        // The backpressure point: a full pipeline blocks this thread,
        // which stops draining the socket.
        match pipe.enqueue_pending(pending) {
            Ok(false) => {}
            Ok(true) => registry.incr(metrics::BACKPRESSURE_WAITS, 1),
            Err(()) => return, // writer died; nothing can be answered
        }
    }
}

/// Validates and routes one decoded request; infallible (every failure
/// becomes a typed error frame).
fn route_request(router: &Router, req: RequestFrame) -> Pending {
    let RequestFrame {
        seq,
        trace_id: _,
        model,
        tenant,
        deadline_us,
        points,
    } = req;
    let model = model as usize;
    let Some(min_points) = router.min_points(model) else {
        return Pending::Ready(encode_err(&ErrFrame {
            seq,
            trace_id: 0,
            code: ErrCode::UnknownModel,
            a: model as u64,
            b: router.models() as u64,
        }));
    };
    if points.len() < min_points {
        // Checked here because a worker replica treats the floor as a
        // caller contract; the network is not a trusted caller.
        return Pending::Ready(encode_err(&ErrFrame {
            seq,
            trace_id: 0,
            code: ErrCode::TooFewPoints,
            a: points.len() as u64,
            b: min_points as u64,
        }));
    }
    let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
    match router.submit(model, tenant, PointCloud::from_points(points), deadline) {
        Ok(ticket) => Pending::Routed { seq, ticket },
        Err(err) => Pending::Ready(encode_err(&serve_err_frame(seq, 0, &err))),
    }
}

/// Maps a typed engine/router error onto the wire.
fn serve_err_frame(seq: u64, trace_id: u64, err: &ServeError) -> ErrFrame {
    let (code, a, b) = match err {
        ServeError::QueueFull { capacity } => (ErrCode::Shed, *capacity as u64, 0),
        ServeError::DeadlineExpired { waited, deadline } => (
            ErrCode::DeadlineExpired,
            waited.as_micros() as u64,
            deadline.as_micros() as u64,
        ),
        ServeError::ShuttingDown => (ErrCode::ShuttingDown, 0, 0),
        ServeError::UnknownModel { index, models } => {
            (ErrCode::UnknownModel, *index as u64, *models as u64)
        }
        ServeError::WorkerLost => (ErrCode::Internal, 0, 0),
    };
    ErrFrame {
        seq,
        trace_id,
        code,
        a,
        b,
    }
}

fn writer_loop(
    mut stream: TcpStream,
    pipe: &Pipe<Pending>,
    router: &Router,
    registry: &Arc<Registry>,
) {
    while let Some(pending) = pipe.dequeue_pending() {
        let frame = match pending {
            Pending::Ready(frame) => frame,
            Pending::Routed { seq, ticket } => {
                let trace_id = ticket.trace_id();
                match router.settle(ticket) {
                    Ok(resolved) => {
                        let out = resolved.output;
                        encode_ok(&OkFrame {
                            seq,
                            trace_id: out.request_id,
                            shard: resolved.shard as u16,
                            hedged: resolved.hedged,
                            queue_us: out.queue_us,
                            total_us: out.total_us,
                            rows: out.logits.rows() as u32,
                            cols: out.logits.cols() as u32,
                            logits: out.logits.as_slice().to_vec(),
                        })
                    }
                    Err(err) => encode_err(&serve_err_frame(seq, trace_id, &err)),
                }
            }
        };
        if stream.write_all(&frame).is_err() {
            // Peer is gone: stop accepting new pendings (the reader's next
            // enqueue fails and tears the connection down); any remaining
            // tickets drain below and are dropped — their engine-side work
            // still completes, only the responses are unsendable.
            pipe.close_pipe();
            while pipe.dequeue_pending().is_some() {}
            return;
        }
        registry.incr(metrics::FRAMES_OUT, 1);
    }
    let _ = stream.flush();
}
