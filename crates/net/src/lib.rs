//! edgepc-net: the sharded TCP front end for the serving runtime.
//!
//! This crate turns a set of in-process [`edgepc_serve::Engine`] shards
//! into a network service:
//!
//! * [`proto`] — a tiny length-prefixed binary wire protocol (versioned
//!   frame header, f32 point payloads, typed error statuses). Decoding is
//!   total: malformed input produces a [`proto::WireError`], never a
//!   panic.
//! * [`router`] — a [`Router`] over N engine shards with least-loaded and
//!   consistent-hash (per-tenant sticky) placement, per-model replica
//!   groups, and hedged retries: a ticket still unresolved past the hedge
//!   threshold is re-submitted to the next-best shard and the first
//!   completion wins.
//! * [`server`] — a [`NetServer`] accepting persistent connections with
//!   pipelined requests; each connection's bounded response pipeline
//!   propagates backpressure to the socket, so a saturated server stops
//!   reading rather than buffering unboundedly.
//! * [`netgen`] — the multi-connection open-loop client driver behind
//!   `results/net.json` (see [`report`] for the schema) and the CI net
//!   smoke; [`scenarios`] contributes the `net.*` rows to `bench_all`.
//!
//! Determinism survives the wire: every shard runs identical
//! deterministic replicas and f32 payloads round-trip bit-exactly, so the
//! same seeded request set produces bit-identical logits whether it is
//! served by one shard or three, over sockets or in process. The root
//! `net_wire` test pins exactly that.
//!
//! Shutdown ordering: stop the [`NetServer`] *before* shutting down the
//! router's engines, so in-flight tickets settle instead of reporting
//! `ShuttingDown`.

pub mod metrics;
pub mod netgen;
pub mod proto;
pub mod report;
pub mod router;
pub mod scenarios;
pub mod server;

pub(crate) mod lockrank;
pub(crate) mod pipe;

pub use netgen::{run_against, run_row, run_sweep, NetReport, NetRow, NetgenConfig};
pub use proto::{ErrCode, Frame, RequestFrame, WireError};
pub use report::net_json;
pub use router::{HedgeConfig, RoutePolicy, RoutedOutput, Router};
pub use scenarios::net_scenarios;
pub use server::{NetConfig, NetServer};
