//! The bounded per-connection response pipeline — where backpressure
//! becomes real.
//!
//! A connection's reader thread decodes request frames and enqueues
//! pending responses here; its writer thread dequeues and settles them in
//! FIFO order. The queue is **bounded**: when `pipeline_depth` responses
//! are outstanding, [`enqueue_pending`](Pipe::enqueue_pending) blocks,
//! which stops the reader draining the socket, which fills the kernel
//! receive buffer, which zeroes the TCP window — the client physically
//! cannot pump more requests into a saturated server. Nothing in this
//! path buffers unboundedly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use edgepc_geom::guard::rank_scope;

use crate::lockrank;

pub(crate) struct Pipe<T> {
    state: Mutex<PipeState<T>>,
    /// Signalled when a slot frees up (readers wait here while full).
    space: Condvar,
    /// Signalled when an item arrives (the writer waits here while empty).
    data: Condvar,
    capacity: usize,
}

struct PipeState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Pipe<T> {
    pub fn new(capacity: usize) -> Self {
        Pipe {
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                closed: false,
            }),
            space: Condvar::new(),
            data: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a pending response, blocking while the pipeline is at
    /// capacity (this block *is* the backpressure propagated to the
    /// socket). `Ok(true)` means the caller had to wait. `Err(())` means
    /// the pipe closed (writer died or connection torn down) — the item
    /// is dropped, which resolves any ticket inside it by cancellation.
    ///
    /// The condvar waits consume and re-issue the bare guard, so the rank
    /// rides in a fn-scoped token (sound across waits: this thread is
    /// blocked while the mutex is released).
    pub fn enqueue_pending(&self, item: T) -> Result<bool, ()> {
        let _rank = rank_scope(lockrank::PIPE, "net.pipe");
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut waited = false;
        while !state.closed && state.queue.len() >= self.capacity {
            waited = true;
            state = self
                .space
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(());
        }
        state.queue.push_back(item);
        drop(state);
        self.data.notify_one();
        Ok(waited)
    }

    /// Dequeues the next pending response, blocking while the pipeline is
    /// empty. `None` means closed *and* drained — the writer's signal to
    /// flush and exit.
    pub fn dequeue_pending(&self) -> Option<T> {
        let _rank = rank_scope(lockrank::PIPE, "net.pipe");
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .data
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the pipe: blocked enqueuers fail, the writer drains what is
    /// queued and then sees `None`. Idempotent; callable from either side.
    pub fn close_pipe(&self) {
        {
            let _rank = rank_scope(lockrank::PIPE, "net.pipe");
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.closed = true;
        }
        self.space.notify_all();
        self.data.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_and_close_semantics() {
        let pipe = Pipe::new(4);
        assert_eq!(pipe.enqueue_pending(1), Ok(false));
        assert_eq!(pipe.enqueue_pending(2), Ok(false));
        assert_eq!(pipe.dequeue_pending(), Some(1));
        pipe.close_pipe();
        assert_eq!(pipe.enqueue_pending(3), Err(()));
        // Drains what was queued before reporting closed.
        assert_eq!(pipe.dequeue_pending(), Some(2));
        assert_eq!(pipe.dequeue_pending(), None);
    }

    #[test]
    fn full_pipe_blocks_until_a_slot_frees() {
        let pipe = Arc::new(Pipe::new(1));
        pipe.enqueue_pending(0u32).unwrap();
        let p2 = Arc::clone(&pipe);
        let enq = std::thread::spawn(move || p2.enqueue_pending(1));
        std::thread::sleep(Duration::from_millis(20));
        // The enqueuer is blocked (backpressure); freeing a slot admits it.
        assert_eq!(pipe.dequeue_pending(), Some(0));
        assert_eq!(enq.join().unwrap(), Ok(true));
        assert_eq!(pipe.dequeue_pending(), Some(1));
    }

    #[test]
    fn close_releases_a_blocked_enqueuer() {
        let pipe = Arc::new(Pipe::new(1));
        pipe.enqueue_pending(0u32).unwrap();
        let p2 = Arc::clone(&pipe);
        let enq = std::thread::spawn(move || p2.enqueue_pending(1));
        std::thread::sleep(Duration::from_millis(20));
        pipe.close_pipe();
        assert_eq!(enq.join().unwrap(), Err(()));
    }
}
