//! Runs the full edgepc-lint rule set over the workspace.
//!
//! ```text
//! lint_all [--root <dir>] [--json <path>] [--rules EP006,EP008]
//! lint_all --results FILE...
//! ```
//!
//! Prints human-readable diagnostics, writes the machine-readable report
//! (default `target/lint.json`, schema `edgepc-lint` v1 — itself pinned
//! under EP005), and exits non-zero on any violation. The summary line
//! carries per-rule wall time. `ci.sh` runs this before clippy;
//! `--no-lint` there skips it.
//!
//! `--rules EP00X,...` runs only the named rules; waivers for skipped
//! rules are exempt from EP000 staleness.
//!
//! `--results FILE...` skips the workspace scan and runs only the EP005
//! results-schema checks over the named artifacts — `ci.sh --serve-smoke`
//! uses it to validate a freshly generated `target/serve.json`.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut json_arg: Option<PathBuf> = None;
    let mut results: Option<Vec<PathBuf>> = None;
    let mut rules_arg: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root_arg = args.next().map(PathBuf::from),
            "--json" => json_arg = args.next().map(PathBuf::from),
            "--rules" => {
                let Some(list) = args.next() else {
                    println!("lint_all: --rules needs a comma-separated rule list");
                    return ExitCode::from(2);
                };
                rules_arg = Some(
                    list.split(',')
                        .map(|r| r.trim().to_string())
                        .filter(|r| !r.is_empty())
                        .collect(),
                );
            }
            "--results" => {
                // Every remaining argument is an artifact path.
                results = Some(args.by_ref().map(PathBuf::from).collect());
            }
            "--help" | "-h" => {
                println!(
                    "usage: lint_all [--root <dir>] [--json <path>] [--rules EP00X,...] [--results FILE...]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                println!("lint_all: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(paths) = results {
        if paths.is_empty() {
            println!("lint_all: --results needs at least one file");
            return ExitCode::from(2);
        }
        let diagnostics = match edgepc_lint::check_results_files(&paths) {
            Ok(d) => d,
            Err(e) => {
                println!("lint_all: {e}");
                return ExitCode::from(2);
            }
        };
        for d in &diagnostics {
            println!("{d}");
        }
        if diagnostics.is_empty() {
            println!(
                "lint_all: results clean ({} artifact{} checked)",
                paths.len(),
                if paths.len() == 1 { "" } else { "s" }
            );
            return ExitCode::SUCCESS;
        }
        return ExitCode::FAILURE;
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| edgepc_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            println!("lint_all: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match edgepc_lint::run_workspace_with(&root, rules_arg.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            println!("lint_all: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.violations {
        println!("{d}");
    }

    let json_path = json_arg.unwrap_or_else(|| root.join("target").join("lint.json"));
    if let Some(parent) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            println!("lint_all: create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        println!("lint_all: write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    println!("{}", report.summary_line());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
