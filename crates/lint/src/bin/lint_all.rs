//! Runs the full edgepc-lint rule set over the workspace.
//!
//! ```text
//! lint_all [--root <dir>] [--json <path>]
//! ```
//!
//! Prints human-readable diagnostics, writes the machine-readable report
//! (default `target/lint.json`), and exits non-zero on any violation.
//! `ci.sh` runs this before clippy; `--no-lint` there skips it.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut json_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root_arg = args.next().map(PathBuf::from),
            "--json" => json_arg = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: lint_all [--root <dir>] [--json <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                println!("lint_all: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| edgepc_lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            println!("lint_all: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match edgepc_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            println!("lint_all: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.violations {
        println!("{d}");
    }

    let json_path = json_arg.unwrap_or_else(|| root.join("target").join("lint.json"));
    if let Some(parent) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            println!("lint_all: create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        println!("lint_all: write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    println!("{}", report.summary_line());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
