//! A minimal TOML subset parser — enough for the two documents the linter
//! reads: `LINT.toml` waiver files (`[[waiver]]` array-of-tables with
//! string values) and workspace `Cargo.toml` manifests (tables, dotted
//! keys, strings, booleans, inline tables, string arrays).
//!
//! Not supported (and not present in this workspace): dates, multi-line
//! basic strings with line-ending backslashes, exotic escapes. The parser
//! reports errors with line numbers instead of panicking.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    Str(String),
    Bool(bool),
    Int(i64),
    Float(f64),
    Array(Vec<TomlValue>),
    /// Tables preserve insertion order; duplicate keys keep the last value.
    Table(Vec<(String, TomlValue)>),
}

impl TomlValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&[(String, TomlValue)]> {
        match self {
            TomlValue::Table(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a direct child of a table.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.as_table()?
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

/// Parses a TOML document into its root table.
pub fn parse(src: &str) -> Result<TomlValue, TomlError> {
    let mut root = TomlValue::Table(Vec::new());
    // Path of the table that `key = value` lines currently land in; the
    // final component of an array-of-tables path addresses its last entry.
    let mut current: Vec<String> = Vec::new();

    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(path) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let path = parse_key_path(path, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(path) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let path = parse_key_path(path, lineno)?;
            ensure_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(eq) = find_top_level_eq(line) {
            let key_path = parse_key_path(&line[..eq], lineno)?;
            let mut value_src = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets close.
            while open_brackets(&value_src) > 0 {
                match lines.next() {
                    Some((_, next)) => {
                        value_src.push(' ');
                        value_src.push_str(strip_comment(next).trim());
                    }
                    None => return err(lineno, "unterminated array"),
                }
            }
            let value = parse_value(&value_src, lineno)?;
            let (last, prefix) = match key_path.split_last() {
                Some(x) => x,
                None => return err(lineno, "empty key"),
            };
            let mut full: Vec<String> = current.clone();
            full.extend(prefix.iter().cloned());
            let table = resolve_mut(&mut root, &full, lineno)?;
            match table {
                TomlValue::Table(entries) => entries.push((last.clone(), value)),
                _ => return err(lineno, "key assignment into non-table"),
            }
        } else {
            return err(lineno, format!("unrecognized line: {line}"));
        }
    }
    Ok(root)
}

/// Drops a `#` comment, respecting basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Index of the first `=` outside quotes.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' | '\'' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses `a.b."c d"` into path components.
fn parse_key_path(src: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let mut parts = Vec::new();
    let mut rest = src.trim();
    while !rest.is_empty() {
        if let Some(stripped) = rest.strip_prefix('"') {
            let end = match stripped.find('"') {
                Some(e) => e,
                None => return err(lineno, "unterminated quoted key"),
            };
            parts.push(stripped[..end].to_string());
            rest = stripped[end + 1..].trim_start();
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            let end = match stripped.find('\'') {
                Some(e) => e,
                None => return err(lineno, "unterminated quoted key"),
            };
            parts.push(stripped[..end].to_string());
            rest = stripped[end + 1..].trim_start();
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            let part = rest[..end].trim();
            if part.is_empty() {
                return err(lineno, "empty key component");
            }
            parts.push(part.to_string());
            rest = rest[end..].trim_start();
        }
        if let Some(stripped) = rest.strip_prefix('.') {
            rest = stripped.trim_start();
            if rest.is_empty() {
                return err(lineno, "trailing dot in key");
            }
        } else if !rest.is_empty() {
            return err(lineno, format!("unexpected key syntax: {src}"));
        }
    }
    if parts.is_empty() {
        return err(lineno, "empty key");
    }
    Ok(parts)
}

/// Walks `path`, creating intermediate tables; the last component of an
/// array-of-tables resolves to its most recent element.
fn resolve_mut<'a>(
    root: &'a mut TomlValue,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut TomlValue, TomlError> {
    let mut node = root;
    for part in path {
        let entries = match node {
            TomlValue::Table(entries) => entries,
            TomlValue::Array(items) => match items.last_mut() {
                Some(last) => match last {
                    TomlValue::Table(entries) => entries,
                    _ => return err(lineno, "array element is not a table"),
                },
                None => return err(lineno, "empty array of tables"),
            },
            _ => return err(lineno, "path traverses a non-table"),
        };
        if !entries.iter().any(|(k, _)| k == part) {
            entries.push((part.clone(), TomlValue::Table(Vec::new())));
        }
        let slot = entries
            .iter_mut()
            .rev()
            .find(|(k, _)| k == part)
            .map(|(_, v)| v);
        node = match slot {
            Some(v) => v,
            None => return err(lineno, "internal: created key vanished"),
        };
        if let TomlValue::Array(items) = node {
            node = match items.last_mut() {
                Some(v) => v,
                None => return err(lineno, "empty array of tables"),
            };
        }
    }
    Ok(node)
}

fn ensure_table(root: &mut TomlValue, path: &[String], lineno: usize) -> Result<(), TomlError> {
    resolve_mut(root, path, lineno).map(|_| ())
}

fn push_array_table(root: &mut TomlValue, path: &[String], lineno: usize) -> Result<(), TomlError> {
    let (last, prefix) = match path.split_last() {
        Some(x) => x,
        None => return err(lineno, "empty array-of-tables path"),
    };
    let parent = resolve_mut(root, prefix, lineno)?;
    let entries = match parent {
        TomlValue::Table(entries) => entries,
        _ => return err(lineno, "array-of-tables parent is not a table"),
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        Some((_, TomlValue::Array(items))) => {
            items.push(TomlValue::Table(Vec::new()));
        }
        Some(_) => return err(lineno, format!("key {last} is not an array of tables")),
        None => {
            entries.push((
                last.clone(),
                TomlValue::Array(vec![TomlValue::Table(Vec::new())]),
            ));
        }
    }
    Ok(())
}

/// Net open `[`/`{` minus closed, outside strings — drives multi-line
/// array consumption.
fn open_brackets(src: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    for c in src.chars() {
        match c {
            '"' | '\'' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

fn parse_value(src: &str, lineno: usize) -> Result<TomlValue, TomlError> {
    let src = src.trim();
    if let Some(stripped) = src.strip_prefix('"') {
        let end = match find_string_end(stripped) {
            Some(e) => e,
            None => return err(lineno, "unterminated string"),
        };
        if !stripped[end + 1..].trim().is_empty() {
            return err(lineno, "trailing content after string");
        }
        return Ok(TomlValue::Str(unescape(&stripped[..end])));
    }
    if let Some(stripped) = src.strip_prefix('\'') {
        let end = match stripped.find('\'') {
            Some(e) => e,
            None => return err(lineno, "unterminated literal string"),
        };
        return Ok(TomlValue::Str(stripped[..end].to_string()));
    }
    if src == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if src == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if src.starts_with('[') {
        if !src.ends_with(']') {
            return err(lineno, "unterminated array");
        }
        let inner = &src[1..src.len() - 1];
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if !piece.is_empty() {
                items.push(parse_value(piece, lineno)?);
            }
        }
        return Ok(TomlValue::Array(items));
    }
    if src.starts_with('{') {
        if !src.ends_with('}') {
            return err(lineno, "unterminated inline table");
        }
        let inner = &src[1..src.len() - 1];
        let mut entries = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let eq = match find_top_level_eq(piece) {
                Some(e) => e,
                None => return err(lineno, format!("inline table entry without `=`: {piece}")),
            };
            let keys = parse_key_path(&piece[..eq], lineno)?;
            let value = parse_value(&piece[eq + 1..], lineno)?;
            // Dotted keys inside inline tables nest right-to-left.
            let mut v = value;
            for key in keys.iter().skip(1).rev() {
                v = TomlValue::Table(vec![(key.clone(), v)]);
            }
            entries.push((keys[0].clone(), v));
        }
        return Ok(TomlValue::Table(entries));
    }
    if let Ok(i) = src.replace('_', "").parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(f) = src.replace('_', "").parse::<f64>() {
        return Ok(TomlValue::Float(f));
    }
    err(lineno, format!("unsupported value: {src}"))
}

/// End of a basic string body, honoring `\"` escapes.
fn find_string_end(body: &str) -> Option<usize> {
    let mut prev_backslash = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' if !prev_backslash => return Some(i),
            _ => prev_backslash = c == '\\' && !prev_backslash,
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Splits on top-level commas (outside nested brackets and strings).
fn split_top_level(src: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in src.char_indices() {
        match c {
            '"' | '\'' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                parts.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&src[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cargo_manifest_shapes() {
        let doc = r#"
[package]
name = "edgepc-sample"
version.workspace = true

[dependencies]
edgepc-geom.workspace = true
serde = "1.0"
local = { path = "../local", features = ["std"] }

[workspace]
members = [
    "crates/*",
]
"#;
        let t = parse(doc).expect("parse");
        let pkg = t.get("package").expect("package");
        assert_eq!(
            pkg.get("name").and_then(TomlValue::as_str),
            Some("edgepc-sample")
        );
        assert_eq!(
            pkg.get("version")
                .and_then(|v| v.get("workspace"))
                .and_then(TomlValue::as_bool),
            Some(true)
        );
        let deps = t.get("dependencies").expect("deps");
        assert!(deps
            .get("edgepc-geom")
            .and_then(|v| v.get("workspace"))
            .is_some());
        assert_eq!(deps.get("serde").and_then(TomlValue::as_str), Some("1.0"));
        assert_eq!(
            deps.get("local")
                .and_then(|v| v.get("path"))
                .and_then(TomlValue::as_str),
            Some("../local")
        );
        let members = t
            .get("workspace")
            .and_then(|w| w.get("members"))
            .and_then(TomlValue::as_array)
            .expect("members");
        assert_eq!(members, &[TomlValue::Str("crates/*".into())]);
    }

    #[test]
    fn parses_array_of_tables() {
        let doc = r#"
[[waiver]]
rule = "EP001"
path = "crates/geom/src/guard.rs"
reason = "sanctioned # diverging site"

[[waiver]]
rule = "EP003"
path = "crates/models/src/dgcnn.rs"
item = "feature_knn"
reason = "spanned at call sites"
"#;
        let t = parse(doc).expect("parse");
        let waivers = t
            .get("waiver")
            .and_then(TomlValue::as_array)
            .expect("waivers");
        assert_eq!(waivers.len(), 2);
        assert_eq!(
            waivers[0].get("reason").and_then(TomlValue::as_str),
            Some("sanctioned # diverging site")
        );
        assert_eq!(
            waivers[1].get("item").and_then(TomlValue::as_str),
            Some("feature_knn")
        );
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let e = parse("key =").expect_err("must fail");
        assert_eq!(e.line, 1);
        let e = parse("[table]\nnot a toml line").expect_err("must fail");
        assert_eq!(e.line, 2);
    }
}
