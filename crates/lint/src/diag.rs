//! Structured diagnostics: every rule violation carries a rule id, a
//! severity, a position, a message, and (when the fix is mechanical) a
//! suggestion. Diagnostics render both human-readable (`file:line:col`)
//! and machine-readable (`target/lint.json`).

use std::fmt;

/// How bad a diagnostic is. Every shipped rule currently reports
/// [`Severity::Error`]; `Warning` exists so future advisory rules don't
/// need a model change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `EP001`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line (0 for whole-file diagnostics such as EP005).
    pub line: usize,
    /// 1-based column (0 for whole-file diagnostics).
    pub col: usize,
    /// What went wrong, in one sentence.
    pub message: String,
    /// A mechanical fix, when one exists.
    pub suggestion: Option<String>,
    /// The named item the diagnostic is about (function name for EP003,
    /// banned identifier for EP001); waivers may scope to it.
    pub item: Option<String>,
}

impl Diagnostic {
    pub fn new(rule: &'static str, file: &str, line: usize, col: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col,
            message,
            suggestion: None,
            item: None,
        }
    }

    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    pub fn with_item(mut self, item: impl Into<String>) -> Self {
        self.item = Some(item.into());
        self
    }

    /// Serializes this diagnostic as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_field(&mut s, "rule", self.rule);
        push_field(&mut s, "severity", self.severity.as_str());
        push_field(&mut s, "file", &self.file);
        s.push_str(&format!("\"line\":{},\"col\":{},", self.line, self.col));
        push_field(&mut s, "message", &self.message);
        if let Some(sug) = &self.suggestion {
            push_field(&mut s, "suggestion", sug);
        }
        if let Some(item) = &self.item {
            push_field(&mut s, "item", item);
        }
        s.pop(); // trailing comma
        s.push('}');
        s
    }
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&escape_json(value));
    out.push(',');
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}: {}:{}:{}: [{}] {}",
                self.severity.as_str(),
                self.file,
                self.line,
                self.col,
                self.rule,
                self.message
            )?;
        } else {
            write!(
                f,
                "{}: {}: [{}] {}",
                self.severity.as_str(),
                self.file,
                self.rule,
                self.message
            )?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_json_round_out() {
        let d = Diagnostic::new("EP001", "crates/x/src/lib.rs", 3, 7, "no `unwrap`".into())
            .with_suggestion("propagate the Option")
            .with_item("unwrap");
        let text = d.to_string();
        assert!(text.contains("crates/x/src/lib.rs:3:7"));
        assert!(text.contains("[EP001]"));
        assert!(text.contains("suggestion: propagate"));
        let json = d.to_json();
        assert!(json.contains("\"rule\":\"EP001\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\"item\":\"unwrap\""));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(escape_json("a\"b\nc"), "\"a\\\"b\\nc\"");
    }
}
