//! `LINT.toml` waivers.
//!
//! A waiver silences one rule at one path (optionally scoped to one named
//! item) and must carry a reason. Waivers are accounted for: an entry
//! that matches no diagnostic on the current tree is itself reported as a
//! violation (`EP000 unused-waiver`), so stale waivers fail the build
//! instead of rotting.
//!
//! ```toml
//! [[waiver]]
//! rule = "EP001"                      # which rule to silence
//! path = "crates/geom/src/guard.rs"   # repo-relative file (or dir/ prefix)
//! item = "violation"                  # optional: scope to one fn/ident
//! reason = "the one sanctioned diverging site"
//! ```

use crate::diag::Diagnostic;
use crate::toml_lite::{self, TomlValue};

/// One `[[waiver]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    /// Repo-relative path; a trailing `/` waives a whole directory.
    pub path: String,
    /// When set, only diagnostics whose `item` equals this are waived.
    pub item: Option<String>,
    pub reason: String,
}

impl Waiver {
    /// Does this waiver cover `diag`?
    pub fn matches(&self, diag: &Diagnostic) -> bool {
        if self.rule != diag.rule {
            return false;
        }
        let path_ok = if self.path.ends_with('/') {
            diag.file.starts_with(&self.path)
        } else {
            diag.file == self.path
        };
        if !path_ok {
            return false;
        }
        match &self.item {
            Some(item) => diag.item.as_deref() == Some(item.as_str()),
            None => true,
        }
    }
}

/// Parses a `LINT.toml` document. Errors are human-readable strings: a
/// malformed waiver file must fail the lint run loudly, not silently
/// un-waive the tree.
pub fn parse_waivers(src: &str) -> Result<Vec<Waiver>, String> {
    let doc = toml_lite::parse(src).map_err(|e| format!("LINT.toml: {e}"))?;
    let entries = match doc.get("waiver") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| "LINT.toml: `waiver` must be an array of tables".to_string())?,
    };
    let mut waivers = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let field = |key: &str| -> Result<String, String> {
            entry
                .get(key)
                .and_then(TomlValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("LINT.toml: waiver #{} is missing `{key}`", i + 1))
        };
        let rule = field("rule")?;
        let path = field("path")?;
        let reason = field("reason")?;
        if reason.trim().len() < 10 {
            return Err(format!(
                "LINT.toml: waiver #{} ({rule} {path}) needs a real reason, got {reason:?}",
                i + 1
            ));
        }
        let item = entry
            .get("item")
            .and_then(TomlValue::as_str)
            .map(str::to_string);
        waivers.push(Waiver {
            rule,
            path,
            item,
            reason,
        });
    }
    Ok(waivers)
}

/// Splits `diags` into (violations, waived-count) and appends an
/// `EP000 unused-waiver` violation for every waiver that matched nothing.
pub fn apply_waivers(diags: Vec<Diagnostic>, waivers: &[Waiver]) -> (Vec<Diagnostic>, usize) {
    let mut used = vec![false; waivers.len()];
    let mut violations = Vec::new();
    let mut waived = 0usize;
    for diag in diags {
        let mut hit = false;
        for (i, w) in waivers.iter().enumerate() {
            if w.matches(&diag) {
                used[i] = true;
                hit = true;
            }
        }
        if hit {
            waived += 1;
        } else {
            violations.push(diag);
        }
    }
    for (w, was_used) in waivers.iter().zip(used) {
        if !was_used {
            violations.push(
                Diagnostic::new(
                    "EP000",
                    "LINT.toml",
                    0,
                    0,
                    format!(
                        "unused waiver: {} at `{}`{} matches no current diagnostic",
                        w.rule,
                        w.path,
                        w.item
                            .as_deref()
                            .map(|i| format!(" (item `{i}`)"))
                            .unwrap_or_default()
                    ),
                )
                .with_suggestion("delete the stale entry from LINT.toml"),
            );
        }
    }
    (violations, waived)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, item: Option<&str>) -> Diagnostic {
        let mut d = Diagnostic::new(rule, file, 1, 1, "x".into());
        if let Some(i) = item {
            d = d.with_item(i);
        }
        d
    }

    #[test]
    fn waiver_matching_scopes() {
        let w = Waiver {
            rule: "EP003".into(),
            path: "crates/models/src/dgcnn.rs".into(),
            item: Some("feature_knn".into()),
            reason: "spanned at call sites".into(),
        };
        assert!(w.matches(&diag(
            "EP003",
            "crates/models/src/dgcnn.rs",
            Some("feature_knn")
        )));
        assert!(!w.matches(&diag(
            "EP003",
            "crates/models/src/dgcnn.rs",
            Some("forward")
        )));
        assert!(!w.matches(&diag(
            "EP001",
            "crates/models/src/dgcnn.rs",
            Some("feature_knn")
        )));

        let dir = Waiver {
            rule: "EP002".into(),
            path: "crates/nn/src/".into(),
            item: None,
            reason: "exact sparsity compares".into(),
        };
        assert!(dir.matches(&diag("EP002", "crates/nn/src/tensor.rs", None)));
        assert!(!dir.matches(&diag("EP002", "crates/geom/src/point.rs", None)));
    }

    #[test]
    fn unused_waivers_become_violations() {
        let waivers = vec![Waiver {
            rule: "EP001".into(),
            path: "crates/x/src/lib.rs".into(),
            item: None,
            reason: "a perfectly fine reason".into(),
        }];
        let (violations, waived) = apply_waivers(Vec::new(), &waivers);
        assert_eq!(waived, 0);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "EP000");
    }

    #[test]
    fn reason_is_mandatory_and_substantial() {
        assert!(parse_waivers("[[waiver]]\nrule = \"EP001\"\npath = \"x\"\n").is_err());
        assert!(parse_waivers(
            "[[waiver]]\nrule = \"EP001\"\npath = \"x\"\nreason = \"because\"\n"
        )
        .is_err());
        let ok = parse_waivers(
            "[[waiver]]\nrule = \"EP001\"\npath = \"x\"\nreason = \"a documented invariant\"\n",
        )
        .expect("valid");
        assert_eq!(ok.len(), 1);
    }
}
