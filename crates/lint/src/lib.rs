//! # edgepc-lint
//!
//! A dependency-free (std-only, no `syn`) static-analysis engine for the
//! EdgePC workspace. It enforces the invariants the instrumented hot path
//! and the benchmark observatory rely on:
//!
//! | rule | invariant |
//! |---|---|
//! | EP001 | no `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!` in non-test hot-path code |
//! | EP002 | no float `==`/`!=` against literals outside tests |
//! | EP003 | every substantial `pub fn` in designated hot modules opens a span |
//! | EP004 | all manifests depend only on workspace/path crates (std-only) |
//! | EP005 | committed `results/*.json` parse; pinned artifacts keep known schemas |
//! | EP006 | every mutex acquisition is declared and nesting ascends the `LINT.toml` lock ranking |
//! | EP007 | deterministic crates leak no hash order, wall clock, or scheduling into results |
//! | EP008 | designated hot fns allocate nothing in steady state (Scratch pool excepted) |
//!
//! EP001–EP005 are token-level. EP006–EP008 run on the **syntactic
//! tier** ([`syntax::FileSyntax`]): a std-only item/impl/fn/closure
//! recovery over the same lexer — same hand-rolled philosophy, no `syn`.
//!
//! Violations can be waived in the root `LINT.toml` (rule + path +
//! optional item + mandatory reason); a waiver that matches nothing is
//! itself a violation (`EP000`), so the waiver file cannot rot. The same
//! file declares the EP006 lock ranking (`[lock]`) and the EP008
//! allocation scopes (`[[alloc.scope]]`).
//!
//! The `lint_all` binary runs the whole engine (`--rules EP006,EP008`
//! filters), prints human-readable diagnostics with per-rule wall time,
//! writes machine-readable `target/lint.json` (schema `edgepc-lint`,
//! itself pinned under EP005), and exits non-zero on any violation.
//! `ci.sh` runs it before clippy.

pub mod config;
pub mod diag;
pub mod json_lite;
pub mod lexer;
pub mod rules;
pub mod syntax;
pub mod toml_lite;
pub mod waiver;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use diag::Diagnostic;
use syntax::FileSyntax;

/// Every rule id the engine knows, in order. `--rules` filters against
/// this list.
pub const ALL_RULES: &[&str] = &[
    "EP000", "EP001", "EP002", "EP003", "EP004", "EP005", "EP006", "EP007", "EP008",
];

/// Crates whose non-test code must be panic-free (EP001): everything on
/// the inference hot path.
pub const HOT_CRATES: &[&str] = &[
    "geom", "morton", "par", "sample", "neighbor", "ir", "models", "core", "serve", "net",
];

/// Files whose public functions must open spans (EP003): the stage entry
/// points behind the paper's latency breakdowns.
pub const SPAN_COVERED_FILES: &[&str] = &[
    "crates/par/src/pool.rs",
    "crates/sample/src/morton_sampler.rs",
    "crates/sample/src/upsample.rs",
    "crates/neighbor/src/window.rs",
    "crates/ir/src/schedule.rs",
    "crates/ir/src/exec.rs",
    "crates/models/src/sa.rs",
    "crates/models/src/fp.rs",
    "crates/models/src/dgcnn.rs",
    "crates/models/src/pointnetpp.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/loadgen.rs",
    "crates/serve/src/telemetry.rs",
    "crates/trace/src/flight.rs",
    "crates/net/src/router.rs",
    "crates/net/src/server.rs",
];

/// The outcome of a full workspace run.
#[derive(Debug)]
pub struct LintReport {
    /// Unwaived violations (including EP000 unused-waiver entries).
    pub violations: Vec<Diagnostic>,
    /// Diagnostics silenced by LINT.toml waivers.
    pub waived: usize,
    /// Rust sources + manifests + results artifacts examined.
    pub files_scanned: usize,
    /// Wall time per rule in microseconds, in rule-id order. Shared
    /// infrastructure (lexing, syntax recovery, file IO) is reported as
    /// the pseudo-rule `parse`.
    pub timings_us: Vec<(&'static str, u128)>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count of violations per rule id, sorted by rule id.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for d in &self.violations {
            match counts.iter_mut().find(|(r, _)| *r == d.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.rule, 1)),
            }
        }
        counts.sort_by_key(|&(r, _)| r);
        counts
    }

    /// One-line summary for CI logs, with per-rule wall time so the
    /// gate's cost stays visible.
    pub fn summary_line(&self) -> String {
        let mut line = if self.is_clean() {
            format!(
                "lint_all: clean ({} files scanned, {} waiver{} used)",
                self.files_scanned,
                self.waived,
                if self.waived == 1 { "" } else { "s" }
            )
        } else {
            let per_rule: Vec<String> = self
                .rule_counts()
                .iter()
                .map(|(r, n)| format!("{r} x{n}"))
                .collect();
            format!(
                "lint_all: {} violation{} [{}] ({} files scanned, {} waived)",
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" },
                per_rule.join(", "),
                self.files_scanned,
                self.waived
            )
        };
        if !self.timings_us.is_empty() {
            let parts: Vec<String> = self
                .timings_us
                .iter()
                .map(|(r, us)| format!("{r} {:.1}ms", *us as f64 / 1000.0))
                .collect();
            line.push_str(&format!(" [{}]", parts.join(", ")));
        }
        line
    }

    /// The machine-readable report (`target/lint.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"edgepc-lint\",\"schema_version\":1,");
        s.push_str(&format!(
            "\"files_scanned\":{},\"waivers_used\":{},\"clean\":{},",
            self.files_scanned,
            self.waived,
            self.is_clean()
        ));
        s.push_str("\"rule_counts\":{");
        let counts: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(r, n)| format!("\"{r}\":{n}"))
            .collect();
        s.push_str(&counts.join(","));
        // Additive under schema v1: readers that predate timings ignore it.
        s.push_str("},\"timings_us\":{");
        let timings: Vec<String> = self
            .timings_us
            .iter()
            .map(|(r, us)| format!("\"{r}\":{us}"))
            .collect();
        s.push_str(&timings.join(","));
        s.push_str("},\"violations\":[");
        let items: Vec<String> = self.violations.iter().map(Diagnostic::to_json).collect();
        s.push_str(&items.join(","));
        s.push_str("]}");
        s
    }
}

/// Runs every rule over the workspace rooted at `root` and applies the
/// `LINT.toml` waivers. Errors are environmental (unreadable files,
/// malformed LINT.toml) — rule violations are *not* errors.
pub fn run_workspace(root: &Path) -> Result<LintReport, String> {
    run_workspace_with(root, None)
}

/// Accumulates per-rule wall time across files.
#[derive(Default)]
struct Timings {
    entries: Vec<(&'static str, u128)>,
}

impl Timings {
    fn add(&mut self, rule: &'static str, since: Instant) {
        let us = since.elapsed().as_micros();
        match self.entries.iter_mut().find(|(r, _)| *r == rule) {
            Some((_, total)) => *total += us,
            None => self.entries.push((rule, us)),
        }
    }
}

/// [`run_workspace`] with an optional rule filter (`--rules` in
/// `lint_all`). `filter = Some(["EP006", …])` runs only those rules;
/// waivers for skipped rules are exempt from EP000 staleness (the rule
/// that would use them never ran), and EP000 itself is skipped unless
/// listed. Unknown rule ids are an error.
pub fn run_workspace_with(root: &Path, filter: Option<&[String]>) -> Result<LintReport, String> {
    if let Some(list) = filter {
        for rule in list {
            if !ALL_RULES.contains(&rule.as_str()) {
                return Err(format!(
                    "unknown rule `{rule}` (known: {})",
                    ALL_RULES.join(", ")
                ));
            }
        }
    }
    let enabled = |rule: &str| filter.is_none_or(|list| list.iter().any(|r| r == rule));

    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    let mut timings = Timings::default();

    // --- Configuration (waivers + lock ranking + alloc scopes) ------------
    let cfg = match fs::read_to_string(root.join("LINT.toml")) {
        Ok(src) => config::parse_config(&src)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => config::LintConfig::default(),
        Err(e) => return Err(format!("read LINT.toml: {e}")),
    };

    // --- Rust sources: EP001/EP002/EP003 (token tier) + EP007/EP008 and
    // --- the EP006 model collection (syntactic tier) -----------------------
    let run_ep006 = enabled("EP006") && cfg.lock.is_some();
    let mut lock_files: Vec<(String, rules::SourceModel, FileSyntax)> = Vec::new();
    for source in collect_rust_sources(root)? {
        let rel = source.rel.clone();
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        let src = fs::read_to_string(&source.abs)
            .map_err(|e| format!("read {}: {e}", source.abs.display()))?;
        let t0 = Instant::now();
        let model = rules::SourceModel::new(&rel, &src);
        let syntax = FileSyntax::parse(&model);
        timings.add("parse", t0);

        if enabled("EP001") && HOT_CRATES.contains(&crate_name) {
            let t = Instant::now();
            diagnostics.extend(rules::ep001::check(&model));
            timings.add("EP001", t);
        }
        if enabled("EP002") {
            let t = Instant::now();
            diagnostics.extend(rules::ep002::check(&model, &syntax));
            timings.add("EP002", t);
        }
        if enabled("EP003") && SPAN_COVERED_FILES.contains(&rel.as_str()) {
            let t = Instant::now();
            diagnostics.extend(rules::ep003::check(&model));
            timings.add("EP003", t);
        }
        if enabled("EP007") && rules::ep007::DETERMINISTIC_CRATES.contains(&crate_name) {
            let t = Instant::now();
            diagnostics.extend(rules::ep007::check(&model, &syntax));
            timings.add("EP007", t);
        }
        if enabled("EP008") {
            let items: Vec<String> = cfg
                .alloc
                .iter()
                .filter(|scope| scope.path == rel)
                .flat_map(|scope| scope.items.iter().cloned())
                .collect();
            if !items.is_empty() {
                let t = Instant::now();
                diagnostics.extend(rules::ep008::check(&model, &syntax, &items));
                timings.add("EP008", t);
            }
        }
        let in_lock_scope = cfg
            .lock
            .as_ref()
            .is_some_and(|lc| lc.crates.iter().any(|c| c == crate_name));
        if run_ep006 && in_lock_scope {
            lock_files.push((rel, model, syntax));
        }
        files_scanned += 1;
    }

    // --- EP006: workspace-level lock-discipline pass -----------------------
    if run_ep006 {
        if let Some(lock_cfg) = &cfg.lock {
            let t = Instant::now();
            let files: Vec<rules::ep006::LockFile<'_>> = lock_files
                .iter()
                .map(|(rel, model, syntax)| rules::ep006::LockFile { rel, model, syntax })
                .collect();
            diagnostics.extend(rules::ep006::check_workspace(&files, lock_cfg));
            timings.add("EP006", t);
        }
    }

    // --- Manifests: EP004 -------------------------------------------------
    if enabled("EP004") {
        for manifest in collect_manifests(root)? {
            let src = fs::read_to_string(&manifest.abs)
                .map_err(|e| format!("read {}: {e}", manifest.abs.display()))?;
            let t = Instant::now();
            diagnostics.extend(rules::ep004::check_manifest(&manifest.rel, &src));
            timings.add("EP004", t);
            files_scanned += 1;
        }
    }

    // --- Results artifacts: EP005 -----------------------------------------
    if enabled("EP005") {
        let results_dir = root.join("results");
        if results_dir.is_dir() {
            for entry in sorted_dir(&results_dir)? {
                if entry.extension().and_then(|e| e.to_str()) == Some("json") {
                    let rel = rel_path(root, &entry);
                    let src = fs::read_to_string(&entry)
                        .map_err(|e| format!("read {}: {e}", entry.display()))?;
                    let t = Instant::now();
                    diagnostics.extend(rules::ep005::check_results_file(&rel, &src));
                    timings.add("EP005", t);
                    files_scanned += 1;
                }
            }
        }
    }

    // --- Waivers ----------------------------------------------------------
    // Only waivers for rules that actually ran participate: a waiver for a
    // skipped rule is neither used nor stale.
    let t = Instant::now();
    let active_waivers: Vec<waiver::Waiver> = cfg
        .waivers
        .iter()
        .filter(|w| enabled(&w.rule))
        .cloned()
        .collect();
    let (mut violations, waived) = waiver::apply_waivers(diagnostics, &active_waivers);
    if !enabled("EP000") {
        violations.retain(|d| d.rule != "EP000");
    }
    timings.add("EP000", t);
    violations
        .sort_by(|a, b| (a.rule, &a.file, a.line, a.col).cmp(&(b.rule, &b.file, b.line, b.col)));
    timings.entries.sort_by_key(|&(r, _)| r);

    Ok(LintReport {
        violations,
        waived,
        files_scanned,
        timings_us: timings.entries,
    })
}

/// Runs only the EP005 results-schema checks over explicit artifact
/// paths (committed or freshly generated — e.g. `target/serve.json` from
/// `ci.sh --serve-smoke`). Pinning is keyed on each file's basename, as
/// in the workspace run. Errors are environmental (unreadable files).
pub fn check_results_files(paths: &[PathBuf]) -> Result<Vec<Diagnostic>, String> {
    let mut diagnostics = Vec::new();
    for path in paths {
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let shown = path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diagnostics.extend(rules::ep005::check_results_file(&shown, &src));
    }
    Ok(diagnostics)
}

/// Locates the workspace root from `start` by walking up to the first
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(src) = fs::read_to_string(&manifest) {
            if toml_lite::parse(&src)
                .ok()
                .is_some_and(|doc| doc.get("workspace").is_some())
            {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

struct FoundFile {
    rel: String,
    abs: PathBuf,
}

/// Every production Rust source: `crates/*/src/**/*.rs` plus the root
/// package's `src/**/*.rs`. Integration tests, benches, examples, and
/// lint fixtures live outside `src/` and are deliberately out of scope.
fn collect_rust_sources(root: &Path) -> Result<Vec<FoundFile>, String> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            dirs.push(krate.join("src"));
        }
    }
    let mut out = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            walk_rs(root, &dir, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<FoundFile>) -> Result<(), String> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            walk_rs(root, &entry, out)?;
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(FoundFile {
                rel: rel_path(root, &entry),
                abs: entry,
            });
        }
    }
    Ok(())
}

/// The root manifest plus every `crates/*/Cargo.toml`.
fn collect_manifests(root: &Path) -> Result<Vec<FoundFile>, String> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.push(FoundFile {
            rel: rel_path(root, &root_manifest),
            abs: root_manifest,
        });
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let manifest = krate.join("Cargo.toml");
            if manifest.is_file() {
                out.push(FoundFile {
                    rel: rel_path(root, &manifest),
                    abs: manifest,
                });
            }
        }
    }
    Ok(out)
}

fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Repo-relative path with `/` separators (stable across platforms, used
/// for waiver matching and report output).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
