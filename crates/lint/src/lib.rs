//! # edgepc-lint
//!
//! A dependency-free (std-only, no `syn`) static-analysis engine for the
//! EdgePC workspace. It enforces the invariants the instrumented hot path
//! and the benchmark observatory rely on:
//!
//! | rule | invariant |
//! |---|---|
//! | EP001 | no `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!` in non-test hot-path code |
//! | EP002 | no float `==`/`!=` against literals outside tests |
//! | EP003 | every substantial `pub fn` in designated hot modules opens a span |
//! | EP004 | all manifests depend only on workspace/path crates (std-only) |
//! | EP005 | committed `results/*.json` parse; `BENCH.json` pins a known schema |
//!
//! Violations can be waived in the root `LINT.toml` (rule + path +
//! optional item + mandatory reason); a waiver that matches nothing is
//! itself a violation (`EP000`), so the waiver file cannot rot.
//!
//! The `lint_all` binary runs the whole engine, prints human-readable
//! diagnostics, writes machine-readable `target/lint.json`, and exits
//! non-zero on any violation. `ci.sh` runs it before clippy.

pub mod diag;
pub mod json_lite;
pub mod lexer;
pub mod rules;
pub mod toml_lite;
pub mod waiver;

use std::fs;
use std::path::{Path, PathBuf};

use diag::Diagnostic;
use rules::RuleSet;

/// Crates whose non-test code must be panic-free (EP001): everything on
/// the inference hot path.
pub const HOT_CRATES: &[&str] = &[
    "geom", "morton", "par", "sample", "neighbor", "models", "core", "serve",
];

/// Files whose public functions must open spans (EP003): the stage entry
/// points behind the paper's latency breakdowns.
pub const SPAN_COVERED_FILES: &[&str] = &[
    "crates/par/src/pool.rs",
    "crates/sample/src/morton_sampler.rs",
    "crates/sample/src/upsample.rs",
    "crates/neighbor/src/window.rs",
    "crates/models/src/sa.rs",
    "crates/models/src/fp.rs",
    "crates/models/src/dgcnn.rs",
    "crates/models/src/pointnetpp.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/loadgen.rs",
    "crates/serve/src/telemetry.rs",
    "crates/trace/src/flight.rs",
];

/// The outcome of a full workspace run.
#[derive(Debug)]
pub struct LintReport {
    /// Unwaived violations (including EP000 unused-waiver entries).
    pub violations: Vec<Diagnostic>,
    /// Diagnostics silenced by LINT.toml waivers.
    pub waived: usize,
    /// Rust sources + manifests + results artifacts examined.
    pub files_scanned: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count of violations per rule id, sorted by rule id.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for d in &self.violations {
            match counts.iter_mut().find(|(r, _)| *r == d.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.rule, 1)),
            }
        }
        counts.sort_by_key(|&(r, _)| r);
        counts
    }

    /// One-line summary for CI logs.
    pub fn summary_line(&self) -> String {
        if self.is_clean() {
            format!(
                "lint_all: clean ({} files scanned, {} waiver{} used)",
                self.files_scanned,
                self.waived,
                if self.waived == 1 { "" } else { "s" }
            )
        } else {
            let per_rule: Vec<String> = self
                .rule_counts()
                .iter()
                .map(|(r, n)| format!("{r} x{n}"))
                .collect();
            format!(
                "lint_all: {} violation{} [{}] ({} files scanned, {} waived)",
                self.violations.len(),
                if self.violations.len() == 1 { "" } else { "s" },
                per_rule.join(", "),
                self.files_scanned,
                self.waived
            )
        }
    }

    /// The machine-readable report (`target/lint.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"edgepc-lint\",\"schema_version\":1,");
        s.push_str(&format!(
            "\"files_scanned\":{},\"waivers_used\":{},\"clean\":{},",
            self.files_scanned,
            self.waived,
            self.is_clean()
        ));
        s.push_str("\"rule_counts\":{");
        let counts: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(r, n)| format!("\"{r}\":{n}"))
            .collect();
        s.push_str(&counts.join(","));
        s.push_str("},\"violations\":[");
        let items: Vec<String> = self.violations.iter().map(Diagnostic::to_json).collect();
        s.push_str(&items.join(","));
        s.push_str("]}");
        s
    }
}

/// Runs every rule over the workspace rooted at `root` and applies the
/// `LINT.toml` waivers. Errors are environmental (unreadable files,
/// malformed LINT.toml) — rule violations are *not* errors.
pub fn run_workspace(root: &Path) -> Result<LintReport, String> {
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;

    // --- Rust sources: EP001 / EP002 / EP003 ------------------------------
    for source in collect_rust_sources(root)? {
        let rel = source.rel.clone();
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        let ruleset = RuleSet {
            panic_freedom: HOT_CRATES.contains(&crate_name),
            float_eq: true,
            span_coverage: SPAN_COVERED_FILES.contains(&rel.as_str()),
        };
        let src = fs::read_to_string(&source.abs)
            .map_err(|e| format!("read {}: {e}", source.abs.display()))?;
        diagnostics.extend(rules::lint_rust_source(&rel, &src, ruleset));
        files_scanned += 1;
    }

    // --- Manifests: EP004 -------------------------------------------------
    for manifest in collect_manifests(root)? {
        let src = fs::read_to_string(&manifest.abs)
            .map_err(|e| format!("read {}: {e}", manifest.abs.display()))?;
        diagnostics.extend(rules::ep004::check_manifest(&manifest.rel, &src));
        files_scanned += 1;
    }

    // --- Results artifacts: EP005 -----------------------------------------
    let results_dir = root.join("results");
    if results_dir.is_dir() {
        for entry in sorted_dir(&results_dir)? {
            if entry.extension().and_then(|e| e.to_str()) == Some("json") {
                let rel = rel_path(root, &entry);
                let src = fs::read_to_string(&entry)
                    .map_err(|e| format!("read {}: {e}", entry.display()))?;
                diagnostics.extend(rules::ep005::check_results_file(&rel, &src));
                files_scanned += 1;
            }
        }
    }

    // --- Waivers ----------------------------------------------------------
    let waivers = match fs::read_to_string(root.join("LINT.toml")) {
        Ok(src) => waiver::parse_waivers(&src)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("read LINT.toml: {e}")),
    };
    let (mut violations, waived) = waiver::apply_waivers(diagnostics, &waivers);
    violations
        .sort_by(|a, b| (a.rule, &a.file, a.line, a.col).cmp(&(b.rule, &b.file, b.line, b.col)));

    Ok(LintReport {
        violations,
        waived,
        files_scanned,
    })
}

/// Runs only the EP005 results-schema checks over explicit artifact
/// paths (committed or freshly generated — e.g. `target/serve.json` from
/// `ci.sh --serve-smoke`). Pinning is keyed on each file's basename, as
/// in the workspace run. Errors are environmental (unreadable files).
pub fn check_results_files(paths: &[PathBuf]) -> Result<Vec<Diagnostic>, String> {
    let mut diagnostics = Vec::new();
    for path in paths {
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let shown = path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diagnostics.extend(rules::ep005::check_results_file(&shown, &src));
    }
    Ok(diagnostics)
}

/// Locates the workspace root from `start` by walking up to the first
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(src) = fs::read_to_string(&manifest) {
            if toml_lite::parse(&src)
                .ok()
                .is_some_and(|doc| doc.get("workspace").is_some())
            {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

struct FoundFile {
    rel: String,
    abs: PathBuf,
}

/// Every production Rust source: `crates/*/src/**/*.rs` plus the root
/// package's `src/**/*.rs`. Integration tests, benches, examples, and
/// lint fixtures live outside `src/` and are deliberately out of scope.
fn collect_rust_sources(root: &Path) -> Result<Vec<FoundFile>, String> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            dirs.push(krate.join("src"));
        }
    }
    let mut out = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            walk_rs(root, &dir, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<FoundFile>) -> Result<(), String> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            walk_rs(root, &entry, out)?;
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(FoundFile {
                rel: rel_path(root, &entry),
                abs: entry,
            });
        }
    }
    Ok(())
}

/// The root manifest plus every `crates/*/Cargo.toml`.
fn collect_manifests(root: &Path) -> Result<Vec<FoundFile>, String> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.push(FoundFile {
            rel: rel_path(root, &root_manifest),
            abs: root_manifest,
        });
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let manifest = krate.join("Cargo.toml");
            if manifest.is_file() {
                out.push(FoundFile {
                    rel: rel_path(root, &manifest),
                    abs: manifest,
                });
            }
        }
    }
    Ok(out)
}

fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Repo-relative path with `/` separators (stable across platforms, used
/// for waiver matching and report output).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
