//! A minimal recursive-descent JSON parser for EP005 (results-schema
//! hygiene). Std-only, no dependencies; errors carry the 1-based line of
//! the offending byte so schema failures in committed `results/*.json`
//! point somewhere useful.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Objects preserve insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        JsonError {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"schema":"edgepc-bench","schema_version":1,"xs":[1,2.5,null,true,"s\n"]}"#)
                .expect("parse");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("edgepc-bench")
        );
        assert_eq!(
            v.get("schema_version").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        match v.get("xs") {
            Some(JsonValue::Arr(items)) => assert_eq!(items.len(), 5),
            other => panic!("xs: {other:?}"),
        }
    }

    #[test]
    fn reports_error_lines() {
        let e = parse("{\n  \"a\": 1,\n  oops\n}").expect_err("must fail");
        assert_eq!(e.line, 3);
        assert!(parse("[1, 2,]").is_err(), "trailing comma rejected");
        assert!(parse("{} extra").is_err(), "trailing content rejected");
    }
}
