//! A small hand-rolled Rust lexer — just enough to tokenize the workspace
//! reliably without `syn`, preserving the std-only guarantee.
//!
//! The lexer understands line and (nested) block comments, plain and raw
//! strings (`r"…"`, `r#"…"#`, byte variants), char literals vs lifetimes,
//! raw identifiers (`r#match`), numeric literals (including float forms and
//! exponents), and a handful of multi-character operators that the rules
//! care about (`==`, `!=`, `->`, `::`, …). It does **not** parse: rule code
//! works over the flat token stream plus bracket matching.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading `'` included).
    Lifetime,
    /// An integer or float literal, suffix included (`1_000u64`, `1.0e-3`).
    Number,
    /// A plain or byte string literal, quotes included.
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`), fences included.
    RawStr,
    /// A char or byte-char literal, quotes included.
    Char,
    /// A `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* … */` comment, nesting handled.
    BlockComment,
    /// Punctuation; multi-char operators listed in [`MULTI_PUNCT`] are one
    /// token, everything else is a single char.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Token {
    /// True for comment tokens, which most rules skip.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this token is a float literal (`1.0`, `2.5e-3`, `1f32`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Number {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.contains('.')
            || t.contains("f32")
            || t.contains("f64")
            || t.contains('e')
            || t.contains('E')
    }
}

/// Multi-character operators kept as single tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "..=", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..",
];

/// Tokenizes `src`. The lexer is total: any byte sequence produces a token
/// stream (unknown chars become single-char [`TokenKind::Punct`] tokens),
/// so a half-edited file cannot crash the linter.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Advances one char, maintaining the line/col counters.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, kind: TokenKind, start_idx: usize, line: usize, col: usize) {
        let text = self.src[self.byte_at(start_idx)..self.byte_at(self.pos)].to_string();
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(start, line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(start, line, col);
            } else if self.raw_string_ahead() {
                self.raw_string(start, line, col);
            } else if self.raw_ident_ahead() {
                self.raw_ident(start, line, col);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                self.string(start, line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_literal(start, line, col);
            } else if c == '"' {
                self.string(start, line, col);
            } else if c == '\'' {
                self.lifetime_or_char(start, line, col);
            } else if c.is_ascii_digit() {
                self.number(start, line, col);
            } else if c.is_alphabetic() || c == '_' {
                self.ident(start, line, col);
            } else {
                self.punct(start, line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: usize, line: usize, col: usize) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.emit(TokenKind::LineComment, start, line, col);
    }

    fn block_comment(&mut self, start: usize, line: usize, col: usize) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.emit(TokenKind::BlockComment, start, line, col);
    }

    /// `r"…"` / `r#"…"#` / `br##"…"##` starts here?
    fn raw_string_ahead(&self) -> bool {
        let mut i = match self.peek(0) {
            Some('r') => 1,
            Some('b') if self.peek(1) == Some('r') => 2,
            _ => return false,
        };
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, start: usize, line: usize, col: usize) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // r
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..fence {
                    if self.peek(ahead) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
        self.emit(TokenKind::RawStr, start, line, col);
    }

    /// `r#ident` (raw identifier, not followed by a quote)?
    fn raw_ident_ahead(&self) -> bool {
        self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
    }

    fn raw_ident(&mut self, start: usize, line: usize, col: usize) {
        self.bump();
        self.bump();
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        self.emit(TokenKind::Ident, start, line, col);
    }

    fn string(&mut self, start: usize, line: usize, col: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.emit(TokenKind::Str, start, line, col);
    }

    fn char_literal(&mut self, start: usize, line: usize, col: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.emit(TokenKind::Char, start, line, col);
    }

    /// Disambiguates `'a` / `'static` (lifetime) from `'x'` / `'\n'` (char).
    fn lifetime_or_char(&mut self, start: usize, line: usize, col: usize) {
        let first = self.peek(1);
        let is_lifetime =
            first.is_some_and(|c| c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            self.bump(); // '
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line, col);
        } else {
            self.char_literal(start, line, col);
        }
    }

    fn number(&mut self, start: usize, line: usize, col: usize) {
        self.bump();
        loop {
            match self.peek(0) {
                // `1..4` is a range, `1.max(2)` a method call — only take
                // the dot when a digit follows (or nothing ident-like, as
                // in the trailing-dot float `1.`).
                Some('.') => {
                    let next = self.peek(1);
                    let take = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some('.') => false,
                        Some(c) if c.is_alphabetic() || c == '_' => false,
                        _ => true,
                    };
                    if !take {
                        break;
                    }
                    self.bump();
                }
                // Exponent sign: `1e-3`, `2.5E+7`.
                Some('+') | Some('-')
                    if matches!(
                        self.chars.get(self.pos.wrapping_sub(1)),
                        Some(&(_, 'e')) | Some(&(_, 'E'))
                    ) && !self
                        .src
                        .get(self.byte_at(start)..self.byte_at(self.pos))
                        .is_some_and(|s| {
                            s.starts_with("0x") || s.starts_with("0b") || s.starts_with("0o")
                        }) =>
                {
                    self.bump();
                }
                Some(c) if c.is_alphanumeric() || c == '_' => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.emit(TokenKind::Number, start, line, col);
    }

    fn ident(&mut self, start: usize, line: usize, col: usize) {
        self.bump();
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        self.emit(TokenKind::Ident, start, line, col);
    }

    fn punct(&mut self, start: usize, line: usize, col: usize) {
        for op in MULTI_PUNCT {
            if op.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c)) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.emit(TokenKind::Punct, start, line, col);
                return;
            }
        }
        self.bump();
        self.emit(TokenKind::Punct, start, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn operators_combine() {
        let toks = kinds("a == b != c -> d :: e ..= f");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "->", "::", "..="]);
    }

    #[test]
    fn float_literals_detected() {
        let toks = tokenize("1.0 1e-9 2.5E+7 1f32 10 0x1E 1..4");
        let floats: Vec<bool> = toks.iter().map(Token::is_float_literal).collect();
        // 1..4 lexes as Number(1) Punct(..) Number(4).
        assert_eq!(
            floats,
            vec![true, true, true, true, false, false, false, false, false]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("fn f() {\n    x\n}");
        let x = &toks[5];
        assert_eq!((x.text.as_str(), x.line, x.col), ("x", 2, 5));
    }
}
