//! The syntactic tier: item/impl/fn structure recovered from the flat
//! token stream, in the same hand-rolled, std-only spirit as the lexer
//! (no `syn`).
//!
//! [`FileSyntax::parse`] walks a [`SourceModel`] once and recovers the
//! structure the parser-backed rules (EP006–EP008) need and the
//! token-level rules cannot see:
//!
//! * every `fn` item — name, visibility, enclosing `impl` type, parameter
//!   names and types (with `Fn`/`FnMut`/`FnOnce` callback detection),
//!   return type, brace-matched body extent, and maximum loop nesting
//!   depth;
//! * closure literals inside any token range ([`closures_in`]), with
//!   parameter names and a body extent that covers both braced and bare
//!   expression bodies;
//! * call sites inside any token range ([`calls_in`]), each with a
//!   normalized receiver chain (`self.inner`, `self.shard()`, `Vec`)
//!   so rules can match declared lock sites and resolve callees.
//!
//! Everything here is *recovery*, not parsing: malformed input degrades
//! to fewer recognized items, never to a panic — the same totality
//! contract the lexer keeps.

use crate::lexer::TokenKind;
use crate::rules::SourceModel;

/// Rust keywords that can precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "fn", "impl", "pub", "use", "mod", "where", "unsafe", "async", "dyn", "ref", "mut",
    "move", "struct", "enum", "trait", "type", "const", "static", "crate", "super",
];

/// One parameter of a recovered `fn`.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (first identifier of the pattern; `self` for
    /// receiver parameters).
    pub name: String,
    /// The type tokens joined with spaces (empty for bare `self`).
    pub ty: String,
}

impl Param {
    /// Does the type name a closure bound (`impl FnOnce(..)`, generic
    /// `F: Fn(..)` parameters surface as the generic's name — callers
    /// should also treat single-uppercase-letter types bounded in the
    /// generics list as potential callbacks; this predicate covers the
    /// `impl Fn*` form that this workspace uses)?
    pub fn is_callback(&self) -> bool {
        self.ty
            .split(|c: char| !c.is_alphanumeric())
            .any(|w| matches!(w, "Fn" | "FnMut" | "FnOnce"))
    }
}

/// One recovered function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Bare `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// The `Self` type name when the fn sits inside an `impl` block.
    pub impl_of: Option<String>,
    /// 1-based position of the fn's name token.
    pub line: usize,
    pub col: usize,
    pub params: Vec<Param>,
    /// Return-type tokens joined with spaces ("" when the fn returns `()`).
    pub ret: String,
    /// Code-index range of the body braces `{ … }` (inclusive), or `None`
    /// for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// The fn sits in a `#[test]` / `#[cfg(test)]` region.
    pub is_test: bool,
    /// Deepest `for`/`while`/`loop` nesting inside the body.
    pub max_loop_depth: usize,
}

/// The recovered structure of one source file.
pub struct FileSyntax {
    pub fns: Vec<FnInfo>,
    /// Code indices of `{` tokens that open loop bodies.
    loop_opens: Vec<usize>,
}

impl FileSyntax {
    /// Walks the model once and recovers every fn item (top-level, inside
    /// `impl` blocks, and nested inside other fns).
    pub fn parse(model: &SourceModel) -> FileSyntax {
        let code = model.code_indices();
        let text = |ci: usize| model.token(code[ci]).text.as_str();
        let kind = |ci: usize| model.token(code[ci]).kind;

        // Pass 1: impl regions (type name + body extent), for impl_of.
        let mut impls: Vec<(String, usize, usize)> = Vec::new();
        let mut ci = 0;
        while ci < code.len() {
            if text(ci) == "impl" && kind(ci) == TokenKind::Ident {
                if let Some((name, open)) = scan_impl_header(model, ci) {
                    if let Some(close) = super::rules::match_braces(&model.tokens, code, open) {
                        impls.push((name, open, close));
                    }
                }
            }
            ci += 1;
        }

        // Pass 2: loop-body braces, for loop-depth accounting.
        let mut loop_opens = Vec::new();
        for ci in 0..code.len() {
            if kind(ci) == TokenKind::Ident && matches!(text(ci), "for" | "while" | "loop") {
                // The body is the first `{` at zero paren/bracket depth
                // after the header expression. `for` inside generic bounds
                // (`impl Fn() + for<'a> …`) never reaches a `{` at depth 0
                // before a `;`, so the scan bails on `;` too.
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut j = ci + 1;
                while j < code.len() {
                    match text(j) {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        ";" if paren <= 0 && bracket <= 0 => break,
                        "{" if paren <= 0 && bracket <= 0 => {
                            loop_opens.push(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }

        // Pass 3: fn items.
        let mut fns = Vec::new();
        let mut ci = 0;
        while ci < code.len() {
            if !(text(ci) == "fn" && kind(ci) == TokenKind::Ident) {
                ci += 1;
                continue;
            }
            let name_ci = ci + 1;
            if name_ci >= code.len() || kind(name_ci) != TokenKind::Ident {
                ci += 1;
                continue;
            }
            let Some(info) = scan_fn(model, &impls, &loop_opens, ci, name_ci) else {
                ci += 1;
                continue;
            };
            ci = name_ci + 1;
            fns.push(info);
        }
        FileSyntax { fns, loop_opens }
    }

    /// The innermost fn whose body contains code index `ci`.
    pub fn enclosing_fn(&self, ci: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(open, close)| open < ci && ci < close))
            .min_by_key(|f| {
                let (open, close) = f.body.unwrap_or((0, usize::MAX));
                close - open
            })
    }

    /// Loop nesting depth at code index `ci` (0 = outside any loop).
    pub fn loop_depth_at(&self, model: &SourceModel, ci: usize) -> usize {
        let code = model.code_indices();
        self.loop_opens
            .iter()
            .filter(|&&open| {
                open < ci
                    && super::rules::match_braces(&model.tokens, code, open)
                        .is_some_and(|close| ci < close)
            })
            .count()
    }
}

/// Scans an `impl` header starting at `ci` (pointing at `impl`). Returns
/// the implemented type's name (the `for` type in trait impls) and the
/// code index of the body `{`.
fn scan_impl_header(model: &SourceModel, ci: usize) -> Option<(String, usize)> {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();
    let kind = |j: usize| model.token(code[j]).kind;

    let mut open = None;
    let mut for_at = None;
    let mut j = ci + 1;
    let mut paren = 0i32;
    while j < code.len() {
        match text(j) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "for" if paren == 0 => for_at = Some(j),
            "{" if paren == 0 => {
                open = Some(j);
                break;
            }
            ";" if paren == 0 => return None, // e.g. `impl Trait` in a type position
            _ => {}
        }
        j += 1;
    }
    let open = open?;
    // The type is the last plain identifier of the path between the start
    // point (`for` in trait impls, the generics otherwise) and the first
    // `<` / `where` / `{` that follows it.
    let start = for_at.map(|f| f + 1).unwrap_or_else(|| {
        // Skip the impl's generic parameter list, if any.
        let mut k = ci + 1;
        if k < code.len() && text(k) == "<" {
            let mut depth = 0i32;
            while k < code.len() {
                match text(k) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        k
    });
    let mut name = None;
    let mut k = start;
    while k < open {
        match text(k) {
            "<" | "where" => break,
            t if kind(k) == TokenKind::Ident && !matches!(t, "dyn" | "mut" | "const") => {
                name = Some(t.to_string());
            }
            _ => {}
        }
        k += 1;
    }
    name.map(|n| (n, open))
}

/// Scans one fn item: `ci` points at `fn`, `name_ci` at the name.
fn scan_fn(
    model: &SourceModel,
    impls: &[(String, usize, usize)],
    loop_opens: &[usize],
    ci: usize,
    name_ci: usize,
) -> Option<FnInfo> {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();

    // Visibility: walk back over qualifiers to find a bare `pub`.
    let mut is_pub = false;
    let mut back = ci;
    while back > 0 {
        back -= 1;
        match text(back) {
            "const" | "unsafe" | "async" | "extern" => continue,
            _ if model.token(code[back]).kind == TokenKind::Str => continue, // extern "C"
            ")" => {
                // `pub(crate)` / `pub(super)`: restricted visibility — not
                // part of the public surface, so stop here with is_pub
                // still false.
                break;
            }
            "pub" => {
                is_pub = true;
                break;
            }
            _ => break,
        }
    }

    // Skip fn generics, then find the parameter list.
    let mut j = name_ci + 1;
    if j < code.len() && text(j) == "<" {
        let mut depth = 0i32;
        while j < code.len() {
            match text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "{" | ";" => return None, // malformed
                _ => {}
            }
            j += 1;
        }
    }
    if j >= code.len() || text(j) != "(" {
        return None;
    }
    let params_open = j;
    let params_close = match_parens(model, params_open)?;
    let params = split_params(model, params_open, params_close);

    // Return type: `-> …` up to `{` / `;` / `where` at depth 0.
    let mut ret = String::new();
    let mut k = params_close + 1;
    if k < code.len() && text(k) == "->" {
        k += 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while k < code.len() {
            match text(k) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" | ";" if paren == 0 && bracket == 0 => break,
                "where" if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(text(k));
            k += 1;
        }
    }
    // Skip a where clause.
    while k < code.len() && !matches!(text(k), "{" | ";") {
        k += 1;
    }
    let body = if k < code.len() && text(k) == "{" {
        super::rules::match_braces(&model.tokens, code, k).map(|close| (k, close))
    } else {
        None
    };

    let max_loop_depth = body
        .map(|(open, close)| {
            let mut depth = 0usize;
            let mut max = 0usize;
            let mut stack: Vec<bool> = Vec::new();
            for ci in open + 1..close {
                match text(ci) {
                    "{" => {
                        let is_loop = loop_opens.contains(&ci);
                        stack.push(is_loop);
                        if is_loop {
                            depth += 1;
                            max = max.max(depth);
                        }
                    }
                    "}" if stack.pop() == Some(true) => {
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
            max
        })
        .unwrap_or(0);

    let name_tok = model.token(code[name_ci]);
    Some(FnInfo {
        name: name_tok.text.clone(),
        is_pub,
        impl_of: impls
            .iter()
            .filter(|(_, open, close)| *open < ci && ci < *close)
            .min_by_key(|(_, open, close)| close - open)
            .map(|(n, _, _)| n.clone()),
        line: name_tok.line,
        col: name_tok.col,
        params,
        ret,
        body,
        is_test: model.in_test(code[name_ci]),
        max_loop_depth,
    })
}

/// Given `ci` pointing at `(`, returns the code index of the matching `)`.
pub fn match_parens(model: &SourceModel, ci: usize) -> Option<usize> {
    let code = model.code_indices();
    let mut depth = 0i32;
    for (j, &ti) in code.iter().enumerate().skip(ci) {
        match model.token(ti).text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a parameter list `( … )` into [`Param`]s at top-level commas.
fn split_params(model: &SourceModel, open: usize, close: usize) -> Vec<Param> {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i32;
    for j in open + 1..=close {
        let t = text(j);
        let boundary = (t == "," && depth == 0) || j == close;
        match t {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" if j != close => depth -= 1,
            _ => {}
        }
        if boundary {
            if j > start {
                let mut name = None;
                let mut ty = String::new();
                let mut seen_colon = false;
                for &ti in code.iter().take(j).skip(start) {
                    let tok = model.token(ti);
                    let tk = tok.text.as_str();
                    if seen_colon {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(tk);
                    } else if tk == ":" {
                        seen_colon = true;
                    } else if name.is_none()
                        && (tok.kind == TokenKind::Ident || tk == "self")
                        && tk != "mut"
                    {
                        name = Some(tk.to_string());
                    }
                }
                if let Some(name) = name {
                    params.push(Param { name, ty });
                }
            }
            start = j + 1;
        }
    }
    params
}

/// A closure literal.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Code index of the opening `|` (or the whole `||` for no-arg
    /// closures).
    pub start: usize,
    pub params: Vec<String>,
    /// Code-index extent of the body, inclusive. Braced bodies span
    /// `{`..`}`; bare expression bodies span to the last token before the
    /// `,` / `)` / `;` that ends them.
    pub body: (usize, usize),
}

/// Tokens that can directly precede a closure's `|`.
fn closure_position(prev: Option<&str>) -> bool {
    match prev {
        None => true,
        Some(t) => {
            matches!(
                t,
                "(" | "," | "=" | "=>" | "{" | ";" | ":" | "return" | "move" | "&&" | "||" | "else"
            )
        }
    }
}

/// Finds top-level closure literals in the code-index range
/// `[from, to]` (inclusive). Nested closures inside a found closure's
/// body are not reported — recurse with the body range to get them.
pub fn closures_in(model: &SourceModel, from: usize, to: usize) -> Vec<Closure> {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();
    let mut out: Vec<Closure> = Vec::new();
    let mut ci = from;
    while ci <= to && ci < code.len() {
        if let Some(last) = out.last() {
            if ci <= last.body.1 {
                ci = last.body.1 + 1;
                continue;
            }
        }
        let t = text(ci);
        let prev = ci.checked_sub(1).map(text);
        let is_pipe = t == "|" && closure_position(prev);
        let is_double = t == "||" && closure_position(prev);
        if !(is_pipe || is_double) {
            ci += 1;
            continue;
        }
        // Parameters: idents up to the closing `|` (none for `||`).
        let mut params = Vec::new();
        let mut body_start = ci + 1;
        if is_pipe {
            let mut j = ci + 1;
            let mut closed = false;
            while j <= to && j < code.len() {
                let tj = text(j);
                if tj == "|" {
                    closed = true;
                    body_start = j + 1;
                    break;
                }
                if model.token(code[j]).kind == TokenKind::Ident && text(j - 1) != ":" {
                    params.push(tj.to_string());
                }
                j += 1;
            }
            if !closed {
                ci += 1;
                continue;
            }
        }
        if body_start > to || body_start >= code.len() {
            break;
        }
        let body_end = if text(body_start) == "{" {
            super::rules::match_braces(&model.tokens, code, body_start).unwrap_or(to)
        } else {
            // Bare expression: until `,` / `)` / `;` / `}` at depth 0.
            let mut depth = 0i32;
            let mut j = body_start;
            let mut end = to;
            while j <= to && j < code.len() {
                match text(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth > 0 => depth -= 1,
                    ")" | "]" | "}" | ";" => {
                        end = j.saturating_sub(1);
                        break;
                    }
                    "," if depth == 0 => {
                        end = j.saturating_sub(1);
                        break;
                    }
                    _ => {}
                }
                j += 1;
                end = j.min(to);
            }
            end
        };
        out.push(Closure {
            start: ci,
            params,
            body: (body_start, body_end.min(to)),
        });
        ci = body_start;
    }
    out
}

/// One call site: an identifier followed by `(` that is not a keyword,
/// a macro invocation, or an `fn` definition.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Code index of the callee name.
    pub ci: usize,
    pub name: String,
    /// Normalized receiver chain, outermost first: `a.b.c()` at callee
    /// `c` yields `["a", "b"]`; `self.shard(x).lock()` at `lock` yields
    /// `["self", "shard()"]`; `Vec::new()` at `new` yields `["Vec"]`.
    pub recv: Vec<String>,
    /// The call is `recv.name(...)` (last separator was `.`).
    pub is_method: bool,
    /// Code-index range of the argument parens, inclusive.
    pub args: (usize, usize),
}

impl CallSite {
    /// The receiver chain joined with `.` (path segments too — good
    /// enough for matching declared lock-site receivers).
    pub fn recv_path(&self) -> String {
        self.recv.join(".")
    }
}

/// Finds call sites in the code-index range `[from, to]` (inclusive).
pub fn calls_in(model: &SourceModel, from: usize, to: usize) -> Vec<CallSite> {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();
    let mut out = Vec::new();
    for ci in from..=to.min(code.len().saturating_sub(1)) {
        if model.token(code[ci]).kind != TokenKind::Ident {
            continue;
        }
        let name = text(ci);
        if KEYWORDS.contains(&name) {
            continue;
        }
        if ci + 1 >= code.len() || text(ci + 1) != "(" {
            continue;
        }
        if ci > 0 && matches!(text(ci - 1), "fn") {
            continue;
        }
        let Some(close) = match_parens(model, ci + 1) else {
            continue;
        };
        let (recv, is_method) = recv_chain(model, ci);
        out.push(CallSite {
            ci,
            name: name.to_string(),
            recv,
            is_method,
            args: (ci + 1, close),
        });
    }
    out
}

/// Walks the receiver/path chain backwards from the callee name at `ci`.
/// Returns the chain (outermost first) and whether the final separator
/// was `.` (method call).
pub fn recv_chain(model: &SourceModel, ci: usize) -> (Vec<String>, bool) {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();
    let mut chain = Vec::new();
    let mut is_method = false;
    let mut j = ci;
    let mut first_sep = true;
    while j > 0 {
        let sep = text(j - 1);
        if sep != "." && sep != "::" {
            break;
        }
        if first_sep {
            is_method = sep == ".";
            first_sep = false;
        }
        if j < 2 {
            break;
        }
        let before = j - 2;
        match text(before) {
            ")" => {
                // A call component: match the parens backwards.
                let mut depth = 0i32;
                let mut k = before;
                loop {
                    match text(k) {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 || k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k == 0 || model.token(code[k - 1]).kind != TokenKind::Ident {
                    break;
                }
                chain.push(format!("{}()", text(k - 1)));
                j = k - 1;
            }
            _ if model.token(code[before]).kind == TokenKind::Ident => {
                chain.push(text(before).to_string());
                j = before;
            }
            _ => break,
        }
    }
    chain.reverse();
    (chain, is_method)
}
