//! `LINT.toml` configuration beyond waivers: the declared lock ranking
//! for EP006 and the designated steady-state allocation scopes for EP008.
//!
//! ```toml
//! [lock]
//! # Ascending acquisition order: a thread holding a lock may only take
//! # locks that appear LATER in this list.
//! ranking = ["serve.planes", "serve.queue", "trace.registry"]
//! # Crates whose sources participate in the interprocedural analysis.
//! crates = ["serve", "trace", "par"]
//!
//! [[lock.site]]
//! lock = "serve.queue"                 # name from `ranking`
//! path = "crates/serve/src/queue.rs"   # file the acquisition lives in
//! recv = "self.inner"                  # receiver chain of the `.lock()`
//!
//! [[alloc.scope]]
//! path = "crates/trace/src/registry.rs"
//! items = ["record", "incr"]           # fns that must not allocate
//! ```

use crate::toml_lite::{self, TomlValue};
use crate::waiver::{self, Waiver};

/// One declared acquisition site: `recv.lock()` in `path` acquires `lock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// A name from [`LockConfig::ranking`].
    pub lock: String,
    /// Repo-relative file the acquisition appears in.
    pub path: String,
    /// Normalized receiver chain, e.g. `self.inner` or `self.shard()`.
    pub recv: String,
}

/// The `[lock]` table: the workspace's declared lock ranking.
#[derive(Debug, Clone, Default)]
pub struct LockConfig {
    /// Lock names in ascending acquisition order.
    pub ranking: Vec<String>,
    /// Crate names (directory names under `crates/`) in scope for EP006.
    pub crates: Vec<String>,
    pub sites: Vec<LockSite>,
}

impl LockConfig {
    /// The rank of `lock` (its position in the declared ordering).
    pub fn rank(&self, lock: &str) -> Option<usize> {
        self.ranking.iter().position(|l| l == lock)
    }
}

/// One `[[alloc.scope]]` entry: fns in `path` that EP008 holds to the
/// steady-state allocation-freedom contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocScope {
    pub path: String,
    pub items: Vec<String>,
}

/// Everything the engine reads from `LINT.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    pub waivers: Vec<Waiver>,
    pub lock: Option<LockConfig>,
    pub alloc: Vec<AllocScope>,
}

/// Parses a full `LINT.toml`. Errors are environmental: a malformed
/// config must fail the run loudly, not silently disable a rule.
pub fn parse_config(src: &str) -> Result<LintConfig, String> {
    let waivers = waiver::parse_waivers(src)?;
    let doc = toml_lite::parse(src).map_err(|e| format!("LINT.toml: {e}"))?;

    let lock = match doc.get("lock") {
        None => None,
        Some(table) => {
            let string_list = |key: &str| -> Result<Vec<String>, String> {
                match table.get(key) {
                    None => Ok(Vec::new()),
                    Some(v) => v
                        .as_array()
                        .ok_or_else(|| format!("LINT.toml: `lock.{key}` must be an array"))?
                        .iter()
                        .map(|e| {
                            e.as_str().map(str::to_string).ok_or_else(|| {
                                format!("LINT.toml: `lock.{key}` entries must be strings")
                            })
                        })
                        .collect(),
                }
            };
            let ranking = string_list("ranking")?;
            if ranking.is_empty() {
                return Err("LINT.toml: `[lock]` needs a non-empty `ranking`".into());
            }
            for (i, name) in ranking.iter().enumerate() {
                if ranking[..i].contains(name) {
                    return Err(format!("LINT.toml: duplicate lock `{name}` in ranking"));
                }
            }
            let crates = string_list("crates")?;
            let mut sites = Vec::new();
            if let Some(entries) = table.get("site") {
                let entries = entries.as_array().ok_or_else(|| {
                    "LINT.toml: `lock.site` must be an array of tables".to_string()
                })?;
                for (i, entry) in entries.iter().enumerate() {
                    let field = |key: &str| -> Result<String, String> {
                        entry
                            .get(key)
                            .and_then(TomlValue::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| {
                                format!("LINT.toml: lock site #{} is missing `{key}`", i + 1)
                            })
                    };
                    let site = LockSite {
                        lock: field("lock")?,
                        path: field("path")?,
                        recv: field("recv")?,
                    };
                    if !ranking.contains(&site.lock) {
                        return Err(format!(
                            "LINT.toml: lock site #{} names `{}`, which is not in `lock.ranking`",
                            i + 1,
                            site.lock
                        ));
                    }
                    sites.push(site);
                }
            }
            Some(LockConfig {
                ranking,
                crates,
                sites,
            })
        }
    };

    let mut alloc = Vec::new();
    if let Some(table) = doc.get("alloc") {
        if let Some(entries) = table.get("scope") {
            let entries = entries
                .as_array()
                .ok_or_else(|| "LINT.toml: `alloc.scope` must be an array of tables".to_string())?;
            for (i, entry) in entries.iter().enumerate() {
                let path = entry
                    .get("path")
                    .and_then(TomlValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        format!("LINT.toml: alloc scope #{} is missing `path`", i + 1)
                    })?;
                let items: Vec<String> = entry
                    .get("items")
                    .and_then(TomlValue::as_array)
                    .ok_or_else(|| {
                        format!("LINT.toml: alloc scope #{} needs an `items` array", i + 1)
                    })?
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect();
                if items.is_empty() {
                    return Err(format!(
                        "LINT.toml: alloc scope #{} ({path}) has no items",
                        i + 1
                    ));
                }
                alloc.push(AllocScope { path, items });
            }
        }
    }

    Ok(LintConfig {
        waivers,
        lock,
        alloc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[lock]
ranking = ["a.one", "a.two"]
crates = ["serve"]

[[lock.site]]
lock = "a.one"
path = "crates/serve/src/x.rs"
recv = "self.inner"

[[alloc.scope]]
path = "crates/serve/src/x.rs"
items = ["hot", "hotter"]

[[waiver]]
rule = "EP008"
path = "crates/serve/src/x.rs"
item = "hot"
reason = "handoff vectors are the API"
"#;

    #[test]
    fn parses_lock_and_alloc_sections() {
        let cfg = parse_config(SAMPLE).expect("valid config");
        let lock = cfg.lock.expect("lock section");
        assert_eq!(lock.ranking, vec!["a.one", "a.two"]);
        assert_eq!(lock.rank("a.two"), Some(1));
        assert_eq!(lock.crates, vec!["serve"]);
        assert_eq!(lock.sites.len(), 1);
        assert_eq!(lock.sites[0].recv, "self.inner");
        assert_eq!(cfg.alloc.len(), 1);
        assert_eq!(cfg.alloc[0].items, vec!["hot", "hotter"]);
        assert_eq!(cfg.waivers.len(), 1);
    }

    #[test]
    fn rejects_undeclared_site_lock_and_empty_ranking() {
        let bad_site = "[lock]\nranking = [\"a\"]\n[[lock.site]]\nlock = \"ghost\"\npath = \"p\"\nrecv = \"r\"\n";
        assert!(parse_config(bad_site).is_err());
        assert!(parse_config("[lock]\ncrates = [\"serve\"]\n").is_err());
        let dup = "[lock]\nranking = [\"a\", \"a\"]\n";
        assert!(parse_config(dup).is_err());
    }

    #[test]
    fn empty_config_is_fine() {
        let cfg = parse_config("").expect("empty ok");
        assert!(cfg.lock.is_none());
        assert!(cfg.alloc.is_empty());
        assert!(cfg.waivers.is_empty());
    }
}
