//! **EP003 — span coverage of designated hot modules.**
//!
//! Every substantial `pub fn` in the designated hot modules (the sampler,
//! the upsampler, the window searcher, and the model stage files) must
//! open an `edgepc_trace` span — directly (`edgepc_trace::span(…)` /
//! `span_in(…)`) or through the models' `observe::stage(…)` bridge — or
//! carry a `LINT.toml` waiver naming the function. An un-spanned stage
//! silently drops out of the fig03-style latency breakdowns the paper's
//! analysis rests on.
//!
//! Scope notes, so the rule stays honest rather than noisy:
//! - only *bare* `pub` functions are checked — `pub(crate)` helpers and
//!   trait-impl methods are reached through spanned public entry points;
//! - constructors and accessors are exempted via a body-size threshold
//!   ([`BODY_TOKEN_THRESHOLD`] significant tokens): they do no stage work;
//! - waivers use `item = "<fn name>"` granularity, so one waived function
//!   cannot hide a later un-spanned neighbor.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::SourceModel;

/// Minimum significant (non-comment) tokens in a body before the rule
/// applies. Constructors and field accessors in the designated files run
/// 10–30 tokens; real stage functions run hundreds.
pub const BODY_TOKEN_THRESHOLD: usize = 40;

/// Call idents accepted as opening a span: the `edgepc_trace` entry points
/// plus the models' `observe::stage` wrapper (which opens a span itself).
const SPAN_OPENERS: &[&str] = &["span", "span_in", "stage"];

pub fn check(model: &SourceModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let code = model.code_indices();
    let text = |ci: usize| model.token(code[ci]).text.as_str();
    let kind = |ci: usize| model.token(code[ci]).kind;

    let mut ci = 0;
    while ci < code.len() {
        if text(ci) != "pub" || model.in_test(code[ci]) {
            ci += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` are not part of the traced surface.
        if ci + 1 < code.len() && text(ci + 1) == "(" {
            ci += 1;
            continue;
        }
        // Allow qualifiers between `pub` and `fn`; bail if this `pub`
        // introduces a non-fn item.
        let mut j = ci + 1;
        while j < code.len() && matches!(text(j), "const" | "unsafe" | "async" | "extern") {
            j += 1;
        }
        if j >= code.len() || text(j) != "fn" {
            ci += 1;
            continue;
        }
        let name_ci = j + 1;
        if name_ci >= code.len() || kind(name_ci) != TokenKind::Ident {
            ci += 1;
            continue;
        }
        let fn_name = text(name_ci).to_string();
        let fn_tok = model.token(code[name_ci]).clone();

        // Body start: first `{` at zero paren/bracket depth; a `;` first
        // means a bodiless trait-method declaration.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut body_open = None;
        let mut k = name_ci + 1;
        while k < code.len() {
            match text(k) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => break,
                "{" if paren == 0 && bracket == 0 => {
                    body_open = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body_open else {
            ci = k + 1;
            continue;
        };
        let close = super::match_braces(&model.tokens, code, open).unwrap_or(code.len() - 1);

        let body = &code[open + 1..close];
        if body.len() >= BODY_TOKEN_THRESHOLD {
            let opens_span = body.windows(2).any(|w| {
                let t = &model.token(w[0]);
                t.kind == TokenKind::Ident
                    && SPAN_OPENERS.contains(&t.text.as_str())
                    && model.token(w[1]).text == "("
            });
            if !opens_span {
                out.push(
                    Diagnostic::new(
                        "EP003",
                        &model.rel,
                        fn_tok.line,
                        fn_tok.col,
                        format!(
                            "`pub fn {fn_name}` ({} tokens) opens no edgepc_trace span; \
                             its work is invisible to stage breakdowns",
                            body.len()
                        ),
                    )
                    .with_suggestion(
                        "open `edgepc_trace::span(\"<stage>.<name>\", \"<kind>\")` at entry, \
                         or waive with item-granularity in LINT.toml",
                    )
                    .with_item(fn_name),
                );
            }
        }
        ci = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceModel::new("crates/sample/src/x.rs", src))
    }

    /// A filler statement block big enough to cross the threshold.
    const FILLER: &str = "let mut acc = 0usize; for i in 0..n { acc += i * 3 + 1; } \
                          for i in 0..n { acc -= i; } let q = acc * 2; let r = q + 1; \
                          let s = r * q; let t = s + r; (t + s) as usize";

    #[test]
    fn flags_large_unspanned_pub_fn() {
        let src = format!("pub fn big(n: usize) -> usize {{ {FILLER} }}");
        let got = run(&src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].item.as_deref(), Some("big"));
    }

    #[test]
    fn spanned_stage_and_small_fns_pass() {
        let spanned = format!(
            "pub fn big(n: usize) -> usize {{ \
             let mut sp = edgepc_trace::span(\"x.big\", \"sample\"); {FILLER} }}"
        );
        assert_eq!(run(&spanned), Vec::new());
        let staged = format!(
            "pub fn big(n: usize) -> usize {{ observe::stage(\"x\", k, fc, rec, || {{ {FILLER} }}) }}"
        );
        assert_eq!(run(&staged), Vec::new());
        assert_eq!(run("pub fn small(&self) -> usize { self.n }"), Vec::new());
    }

    #[test]
    fn pub_crate_and_trait_methods_ignored() {
        let src = format!(
            "pub(crate) fn helper(n: usize) -> usize {{ {FILLER} }}\n\
             impl T for S {{ fn run(n: usize) -> usize {{ {FILLER} }} }}"
        );
        assert_eq!(run(&src), Vec::new());
    }
}
