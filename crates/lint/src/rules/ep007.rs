//! EP007 — determinism hygiene.
//!
//! The repo's headline invariant is bit-identical outputs at any thread
//! budget (`par_determinism` pins). This rule flags the three classic
//! ways that invariant erodes in the deterministic crates:
//!
//! * **(a) hash-order leaks**: iterating a `HashMap`/`HashSet`
//!   (`iter`/`keys`/`values`/`drain`/`into_iter`) inside a fn that
//!   returns a value — hash iteration order is randomized per process,
//!   so anything derived from it must be sorted first. A later `sort*`
//!   call on the iteration result inside the same fn sanitizes the site.
//!   Keyed access (`get`/`entry`/`contains_key`/`insert`) is fine.
//! * **(b) wall-clock and identity values**: `Instant::now`,
//!   `SystemTime`, `ThreadId` / `thread::current()` in non-test code —
//!   timing belongs in spans (the `trace` crate is exempt by
//!   configuration), never in results.
//! * **(c) unordered cross-chunk communication in parallel folds**:
//!   closures passed to the `par_*` primitives that use read-modify-write
//!   atomics (`fetch_add`…, `compare_exchange`) or take mutexes — both
//!   make the result depend on chunk scheduling. Plain `store`/`load`
//!   (the disjoint-index radix scatter idiom) and chunk-order
//!   recombination stay allowed.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::SourceModel;
use crate::syntax::{self, FileSyntax};

/// Crates under the bit-identical-results contract. `serve`/`trace`/
/// `perf` are exempt: they measure wall time by design.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "geom", "morton", "par", "sample", "neighbor", "models", "core", "nn", "ir",
];

const HASH_ITERATORS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

const PAR_ENTRY_POINTS: &[&str] = &[
    "par_for",
    "par_map",
    "par_chunk_map",
    "par_chunks_mut",
    "par_ranges",
    "par_reduce",
];

const RMW_ATOMICS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

pub fn check(model: &SourceModel, syn: &FileSyntax) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let code = model.code_indices();
    let text = |ci: usize| model.token(code[ci]).text.as_str();
    let kind = |ci: usize| model.token(code[ci]).kind;
    let is_test = |ci: usize| model.in_test(code[ci]);

    // --- (a) names bound to hash collections -------------------------------
    let mut hash_names: Vec<String> = Vec::new();
    for ci in 0..code.len() {
        if kind(ci) != TokenKind::Ident || !matches!(text(ci), "HashMap" | "HashSet") {
            continue;
        }
        // Walk back over the path (`std :: collections :: HashMap`) and
        // any reference/mutability tokens (`&`, `mut`, lifetimes).
        let mut j = ci;
        while j >= 2 && text(j - 1) == "::" && kind(j - 2) == TokenKind::Ident {
            j -= 2;
        }
        while j >= 1 && (matches!(text(j - 1), "&" | "mut") || kind(j - 1) == TokenKind::Lifetime) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let name = match text(j - 1) {
            // `name: HashMap<…>` (binding or field or param).
            ":" if j >= 2 && kind(j - 2) == TokenKind::Ident => text(j - 2),
            // `let name = HashMap::new()` / `= HashSet::from(…)`.
            "=" if j >= 2 && kind(j - 2) == TokenKind::Ident => text(j - 2),
            _ => continue,
        };
        if !hash_names.iter().any(|n| n == name) {
            hash_names.push(name.to_string());
        }
    }
    for ci in 0..code.len() {
        if kind(ci) != TokenKind::Ident
            || !HASH_ITERATORS.contains(&text(ci))
            || is_test(ci)
            || ci + 1 >= code.len()
            || text(ci + 1) != "("
            || ci == 0
            || text(ci - 1) != "."
        {
            continue;
        }
        let (recv, _) = syntax::recv_chain(model, ci);
        let Some(hashed) = recv.iter().find(|c| {
            let base = c.trim_end_matches("()");
            hash_names.iter().any(|n| n == base)
        }) else {
            continue;
        };
        let Some(f) = syn.enclosing_fn(ci) else {
            continue;
        };
        if f.ret.is_empty() {
            continue; // nothing returned; iteration feeds no result value
        }
        // Sanitized if the iteration result is sorted later in the fn.
        let sorted_after = f.body.is_some_and(|(_, close)| {
            (ci..=close.min(code.len().saturating_sub(1))).any(|j| {
                kind(j) == TokenKind::Ident
                    && text(j).starts_with("sort")
                    && j > 0
                    && text(j - 1) == "."
            })
        });
        if sorted_after {
            continue;
        }
        let tok = model.token(code[ci]);
        out.push(
            Diagnostic::new(
                "EP007",
                &model.rel,
                tok.line,
                tok.col,
                format!(
                    "hash-order leak: `{hashed}.{}()` iterates a HashMap/HashSet inside `{}`, \
                     which returns a value — iteration order is randomized per process",
                    text(ci),
                    f.name
                ),
            )
            .with_item(f.name.clone())
            .with_suggestion("sort the iteration result (or collect into a sorted structure) before it feeds the return value"),
        );
    }

    // --- (b) wall-clock / thread-identity sources --------------------------
    for ci in 0..code.len() {
        if kind(ci) != TokenKind::Ident || is_test(ci) {
            continue;
        }
        let offender = match text(ci) {
            "Instant" if ci + 2 < code.len() && text(ci + 1) == "::" && text(ci + 2) == "now" => {
                Some("Instant::now")
            }
            "SystemTime" => Some("SystemTime"),
            "ThreadId" => Some("ThreadId"),
            "current" if ci >= 2 && text(ci - 1) == "::" && text(ci - 2) == "thread" => {
                Some("thread::current")
            }
            _ => None,
        };
        let Some(offender) = offender else { continue };
        let tok = model.token(code[ci]);
        let item = syn.enclosing_fn(ci).map(|f| f.name.clone());
        let mut d = Diagnostic::new(
            "EP007",
            &model.rel,
            tok.line,
            tok.col,
            format!(
                "nondeterministic source `{offender}` in a deterministic crate — timing and \
                 thread identity belong in spans (edgepc-trace), never in results"
            ),
        )
        .with_suggestion("move the measurement into a span or behind the trace registry");
        if let Some(item) = item {
            d = d.with_item(item);
        }
        out.push(d);
    }

    // --- (c) scheduling-dependent state in par_* closures ------------------
    for f in &syn.fns {
        if f.is_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        for call in syntax::calls_in(model, open + 1, close.saturating_sub(1)) {
            if !PAR_ENTRY_POINTS.contains(&call.name.as_str()) {
                continue;
            }
            for closure in syntax::closures_in(model, call.args.0 + 1, call.args.1) {
                scan_par_closure(model, syn, &call.name, closure.body, &mut out);
            }
        }
    }

    out
}

fn scan_par_closure(
    model: &SourceModel,
    syn: &FileSyntax,
    par_fn: &str,
    body: (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    let code = model.code_indices();
    let text = |ci: usize| model.token(code[ci]).text.as_str();
    let kind = |ci: usize| model.token(code[ci]).kind;
    for ci in body.0..=body.1.min(code.len().saturating_sub(1)) {
        if kind(ci) != TokenKind::Ident || ci == 0 || text(ci - 1) != "." {
            continue;
        }
        if ci + 1 >= code.len() || text(ci + 1) != "(" {
            continue;
        }
        let name = text(ci);
        let offender = if RMW_ATOMICS.contains(&name) {
            Some("read-modify-write atomic")
        } else if name == "lock" {
            Some("mutex acquisition")
        } else {
            None
        };
        let Some(offender) = offender else { continue };
        if model.in_test(code[ci]) {
            continue;
        }
        let tok = model.token(code[ci]);
        let item = syn
            .enclosing_fn(ci)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| par_fn.to_string());
        out.push(
            Diagnostic::new(
                "EP007",
                &model.rel,
                tok.line,
                tok.col,
                format!(
                    "{offender} `.{name}()` inside a `{par_fn}` closure makes the fold depend on \
                     chunk scheduling — recombine per-chunk results in chunk order instead"
                ),
            )
            .with_item(item)
            .with_suggestion(
                "return per-chunk values and combine them after the parallel section (chunk-order recombination)",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = SourceModel::new("crates/geom/src/x.rs", src);
        let syn = FileSyntax::parse(&model);
        check(&model, &syn)
    }

    #[test]
    fn unsorted_hash_iteration_feeding_return_is_flagged() {
        let src = r#"
use std::collections::HashMap;
pub fn skewed(m: &HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect()
}
"#;
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("hash-order leak"));
        assert_eq!(diags[0].item.as_deref(), Some("skewed"));
    }

    #[test]
    fn sorted_iteration_and_keyed_access_are_clean() {
        let src = r#"
use std::collections::HashMap;
pub fn ordered(m: &HashMap<String, u64>) -> Vec<String> {
    let mut names: Vec<String> = m.keys().cloned().collect();
    names.sort();
    names
}
pub fn keyed(m: &HashMap<String, u64>, k: &str) -> u64 {
    m.get(k).copied().unwrap_or(0)
}
pub fn side_effect_only(m: &HashMap<String, u64>) {
    for v in m.values() {
        let _ = v;
    }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn wall_clock_sources_are_flagged_outside_tests() {
        let src = r#"
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
"#;
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Instant::now"));
    }

    #[test]
    fn rmw_atomics_in_par_closures_are_flagged_but_store_is_fine() {
        let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn bad_fold(xs: &[u64], total: &AtomicU64) -> u64 {
    edgepc_par::par_reduce(
        xs,
        8,
        |chunk| {
            total.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            chunk.iter().sum()
        },
        |a, b| a + b,
    )
}
pub fn scatter(xs: &[u64], out: &[AtomicU64]) {
    edgepc_par::par_for(xs.len(), 8, |i| {
        out[i].store(xs[i], Ordering::Relaxed);
    });
}
"#;
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("fetch_add"));
        assert_eq!(diags[0].item.as_deref(), Some("bad_fold"));
    }
}
