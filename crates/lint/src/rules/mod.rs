//! The rule engine: a shared token-level source model plus one module per
//! rule. Rules run over [`SourceModel`] (per-file rules EP001–EP003) or
//! raw document text (workspace rules EP004–EP005); all return
//! [`Diagnostic`]s and never panic on malformed input.
//!
//! Adding a rule: create `rules/epNNN.rs` with a
//! `check(&SourceModel) -> Vec<Diagnostic>` (or document-level) function,
//! add it to the dispatch in [`lint_rust_source`] or the engine in
//! `lib.rs`, and give it a fixture pair under `tests/fixtures/`.

pub mod ep001;
pub mod ep002;
pub mod ep003;
pub mod ep004;
pub mod ep005;
pub mod ep006;
pub mod ep007;
pub mod ep008;

use crate::lexer::{self, Token, TokenKind};

/// Which per-file rules apply to a source file. The engine derives this
/// from the file's path (hot crate? designated EP003 module?); fixture
/// tests set the flags directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// EP001 panic-freedom (hot-path crates only).
    pub panic_freedom: bool,
    /// EP002 float equality (all production code).
    pub float_eq: bool,
    /// EP003 span coverage (designated hot modules only).
    pub span_coverage: bool,
    /// EP007 determinism hygiene (deterministic crates only).
    pub determinism: bool,
}

/// A tokenized source file with test regions resolved.
pub struct SourceModel {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    code: Vec<usize>,
    /// Per-token: lies inside a `#[test]` / `#[cfg(test)]` region.
    test_mask: Vec<bool>,
}

impl SourceModel {
    pub fn new(rel: &str, src: &str) -> Self {
        let tokens = lexer::tokenize(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let test_mask = compute_test_mask(&tokens, &code);
        SourceModel {
            rel: rel.to_string(),
            tokens,
            code,
            test_mask,
        }
    }

    /// Indices (into `tokens`) of code tokens, skipping comments.
    pub fn code_indices(&self) -> &[usize] {
        &self.code
    }

    pub fn token(&self, idx: usize) -> &Token {
        &self.tokens[idx]
    }

    /// Is the token at `idx` inside a test region?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }

    /// The code token after `idx`, comments skipped.
    pub fn next_code(&self, idx: usize) -> Option<&Token> {
        self.code
            .iter()
            .find(|&&i| i > idx)
            .map(|&i| &self.tokens[i])
    }

    /// The code token before `idx`, comments skipped.
    pub fn prev_code(&self, idx: usize) -> Option<&Token> {
        self.code
            .iter()
            .rev()
            .find(|&&i| i < idx)
            .map(|&i| &self.tokens[i])
    }
}

/// Marks every token belonging to an item annotated `#[test]`,
/// `#[cfg(test)]`, or `#[cfg(any(test, …))]` — but not `#[cfg(not(test))]`
/// (production) or `#[cfg_attr(test, …)]` (compiled in production too).
fn compute_test_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let text = |ci: usize| tokens[code[ci]].text.as_str();
    let kind = |ci: usize| tokens[code[ci]].kind;

    let mut ci = 0;
    while ci < code.len() {
        if !(text(ci) == "#" && ci + 1 < code.len() && text(ci + 1) == "[") {
            ci += 1;
            continue;
        }
        let attr_start = ci;
        let (attr_end, is_test) = match scan_attribute(tokens, code, ci) {
            Some(x) => x,
            None => break, // unterminated attribute at EOF
        };
        if !is_test {
            ci = attr_end + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_end + 1;
        while k + 1 < code.len() && text(k) == "#" && text(k + 1) == "[" {
            match scan_attribute(tokens, code, k) {
                Some((end, _)) => k = end + 1,
                None => break,
            }
        }
        // Find the item's extent: a `;` (no body) or a matched brace block,
        // at zero paren/bracket depth.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut end = None;
        while k < code.len() {
            match (kind(k), text(k)) {
                (TokenKind::Punct, "(") => paren += 1,
                (TokenKind::Punct, ")") => paren -= 1,
                (TokenKind::Punct, "[") => bracket += 1,
                (TokenKind::Punct, "]") => bracket -= 1,
                (TokenKind::Punct, ";") if paren == 0 && bracket == 0 => {
                    end = Some(k);
                    break;
                }
                (TokenKind::Punct, "{") if paren == 0 && bracket == 0 => {
                    end = match_braces(tokens, code, k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end.unwrap_or(code.len() - 1);
        for &ti in &code[attr_start..=end.min(code.len() - 1)] {
            mask[ti] = true;
        }
        // Comment tokens inside the region are test too (harmless).
        if let (Some(&first), Some(&last)) = (code.get(attr_start), code.get(end)) {
            for m in mask.iter_mut().take(last + 1).skip(first) {
                *m = true;
            }
        }
        ci = end + 1;
    }
    mask
}

/// Scans `#[…]` starting at code index `ci` (pointing at `#`). Returns the
/// code index of the closing `]` and whether the attribute marks a test
/// region.
fn scan_attribute(tokens: &[Token], code: &[usize], ci: usize) -> Option<(usize, bool)> {
    let text = |i: usize| tokens[code[i]].text.as_str();
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = ci + 1;
    while j < code.len() {
        match text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let is_test = match idents.first() {
                        Some(&"test") => true,
                        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
                        _ => false,
                    };
                    return Some((j, is_test));
                }
            }
            _ => {
                if tokens[code[j]].kind == TokenKind::Ident {
                    idents.push(text(j));
                }
            }
        }
        j += 1;
    }
    None
}

/// Given `ci` pointing at `{`, returns the code index of the matching `}`.
pub fn match_braces(tokens: &[Token], code: &[usize], ci: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, &ti) in code.iter().enumerate().skip(ci) {
        match tokens[ti].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs the enabled per-file rules over one Rust source text. The engine
/// in `lib.rs` dispatches rules individually (sharing one parsed
/// [`SourceModel`] + syntax tree and timing each rule); this is the
/// single-file convenience entry point.
pub fn lint_rust_source(rel: &str, src: &str, rules: RuleSet) -> Vec<crate::diag::Diagnostic> {
    let model = SourceModel::new(rel, src);
    let syntax = crate::syntax::FileSyntax::parse(&model);
    let mut out = Vec::new();
    if rules.panic_freedom {
        out.extend(ep001::check(&model));
    }
    if rules.float_eq {
        out.extend(ep002::check(&model, &syntax));
    }
    if rules.span_coverage {
        out.extend(ep003::check(&model));
    }
    if rules.determinism {
        out.extend(ep007::check(&model, &syntax));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_test_fns_and_modules() {
        let src = r#"
pub fn production() { work(); }

#[test]
fn unit() { production(); }

#[cfg(test)]
mod tests {
    fn helper() {}
}

#[cfg(not(test))]
pub fn prod_only() {}
"#;
        let m = SourceModel::new("x.rs", src);
        let at = |name: &str| {
            let ti = m
                .tokens
                .iter()
                .position(|t| t.text == name)
                .unwrap_or_else(|| panic!("token {name}"));
            m.in_test(ti)
        };
        assert!(!at("production"));
        assert!(at("unit"));
        assert!(at("helper"));
        assert!(!at("prod_only"));
    }

    #[test]
    fn should_panic_attribute_rides_with_test() {
        let src = r#"
#[test]
#[should_panic(expected = "boom")]
fn explodes() { panic!("boom"); }

pub fn after() {}
"#;
        let m = SourceModel::new("x.rs", src);
        let panic_ti = m
            .tokens
            .iter()
            .position(|t| t.text == "panic")
            .expect("panic token");
        assert!(m.in_test(panic_ti));
        let after_ti = m
            .tokens
            .iter()
            .position(|t| t.text == "after")
            .expect("after token");
        assert!(!m.in_test(after_ti));
    }
}
