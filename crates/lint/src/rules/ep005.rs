//! **EP005 — results-schema hygiene.**
//!
//! Committed `results/*.json` artifacts are inputs to the benchmark
//! comparator and the paper-figure tooling; a file that no longer parses,
//! or a pinned artifact whose schema drifted without a version bump,
//! poisons every downstream comparison. This rule re-parses each
//! committed artifact with the std-only JSON parser and pins the
//! well-known artifacts to their declared schemas (see
//! [`PINNED_SCHEMAS`]): `BENCH.json` from `edgepc-perf`, `serve.json`
//! from `edgepc-serve`, and `flightrec.json` from the flight recorder in
//! `edgepc-trace`.

use crate::diag::Diagnostic;
use crate::json_lite::{self, JsonValue};

/// BENCH.json schema versions this linter understands. Bump alongside
/// `edgepc-perf`'s emitter when the schema changes shape.
pub const KNOWN_BENCH_VERSIONS: &[i64] = &[1];

/// serve.json schema versions this linter understands. Bump alongside
/// `edgepc-serve`'s emitter when the schema changes shape.
pub const KNOWN_SERVE_VERSIONS: &[i64] = &[1];

/// flightrec.json schema versions this linter understands. Bump alongside
/// `edgepc_trace::flight`'s emitter when the schema changes shape.
pub const KNOWN_FLIGHTREC_VERSIONS: &[i64] = &[1];

/// net.json schema versions this linter understands. Bump alongside
/// `edgepc_net::report`'s emitter when the schema changes shape.
pub const KNOWN_NET_VERSIONS: &[i64] = &[1];

/// lint.json schema versions this linter understands. Bump alongside
/// `LintReport::to_json` when the report changes shape — the linter's own
/// output is a schema-checked artifact like any other.
pub const KNOWN_LINT_VERSIONS: &[i64] = &[1];

/// ir_smoke.json schema versions this linter understands. Bump alongside
/// the `ir_smoke` harness in `edgepc-bench` when the compiled-vs-eager
/// smoke report changes shape.
pub const KNOWN_IR_SMOKE_VERSIONS: &[i64] = &[1];

/// Artifacts pinned by basename: `(basename, schema, known versions)`.
pub const PINNED_SCHEMAS: &[(&str, &str, &[i64])] = &[
    ("BENCH.json", "edgepc-bench", KNOWN_BENCH_VERSIONS),
    ("serve.json", "edgepc-serve", KNOWN_SERVE_VERSIONS),
    (
        "flightrec.json",
        "edgepc-flightrec",
        KNOWN_FLIGHTREC_VERSIONS,
    ),
    ("lint.json", "edgepc-lint", KNOWN_LINT_VERSIONS),
    ("net.json", "edgepc-net", KNOWN_NET_VERSIONS),
    ("ir_smoke.json", "edgepc-ir-smoke", KNOWN_IR_SMOKE_VERSIONS),
];

/// Checks one results artifact. `rel` is the path shown in diagnostics
/// (repo-relative for committed artifacts); pinning is keyed on the
/// basename, so a freshly generated `target/serve.json` is held to the
/// same schema as the committed `results/serve.json`.
pub fn check_results_file(rel: &str, src: &str) -> Vec<Diagnostic> {
    let doc = match json_lite::parse(src) {
        Ok(d) => d,
        Err(e) => {
            return vec![Diagnostic::new(
                "EP005",
                rel,
                e.line,
                0,
                format!(
                    "committed results artifact does not parse as JSON: {}",
                    e.message
                ),
            )
            .with_suggestion("re-run the emitting harness or delete the stale artifact")];
        }
    };
    let basename = rel.rsplit('/').next().unwrap_or(rel);
    let Some(&(name, schema, versions)) = PINNED_SCHEMAS.iter().find(|(n, _, _)| *n == basename)
    else {
        return Vec::new();
    };

    let mut out = Vec::new();
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(found) if found == schema => {}
        Some(other) => out.push(Diagnostic::new(
            "EP005",
            rel,
            0,
            0,
            format!("{name} declares schema {other:?}, expected {schema:?}"),
        )),
        None => out.push(Diagnostic::new(
            "EP005",
            rel,
            0,
            0,
            format!("{name} is missing the `schema` marker"),
        )),
    }
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_f64)
        .and_then(|v| {
            let iv = v as i64;
            // Versions are small integers; reject fractional values.
            if (v - iv as f64).abs() < 1e-9 {
                Some(iv)
            } else {
                None
            }
        });
    match version {
        Some(v) if versions.contains(&v) => {}
        Some(v) => out.push(
            Diagnostic::new(
                "EP005",
                rel,
                0,
                0,
                format!("{name} schema_version {v} is unknown (known: {versions:?})"),
            )
            .with_suggestion("teach edgepc-lint the new version when the emitter schema is bumped"),
        ),
        None => out.push(Diagnostic::new(
            "EP005",
            rel,
            0,
            0,
            format!("{name} is missing an integer `schema_version`"),
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_bench_and_plain_results_pass() {
        let bench = r#"{"schema":"edgepc-bench","schema_version":1,"scenarios":[]}"#;
        assert_eq!(check_results_file("results/BENCH.json", bench), Vec::new());
        assert_eq!(
            check_results_file("results/fig03.json", r#"{"anything": [1, 2]}"#),
            Vec::new()
        );
    }

    #[test]
    fn unparsable_artifact_flagged_with_line() {
        let got = check_results_file("results/broken.json", "{\n  \"a\": [1,\n}");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn bench_schema_drift_flagged() {
        let wrong_schema = r#"{"schema":"other","schema_version":1}"#;
        let wrong_version = r#"{"schema":"edgepc-bench","schema_version":99}"#;
        let missing = r#"{"scenarios":[]}"#;
        assert_eq!(
            check_results_file("results/BENCH.json", wrong_schema).len(),
            1
        );
        assert_eq!(
            check_results_file("results/BENCH.json", wrong_version).len(),
            1
        );
        assert_eq!(check_results_file("results/BENCH.json", missing).len(), 2);
    }

    #[test]
    fn flightrec_json_is_pinned() {
        let ok = r#"{"schema":"edgepc-flightrec","schema_version":1,"events":[],"spans":[]}"#;
        assert_eq!(check_results_file("target/flightrec.json", ok), Vec::new());
        let drifted = r#"{"schema":"edgepc-flightrec","schema_version":7,"events":[]}"#;
        assert_eq!(
            check_results_file("target/flightrec.json", drifted).len(),
            1
        );
    }

    #[test]
    fn ir_smoke_json_is_pinned() {
        let ok = r#"{"schema":"edgepc-ir-smoke","schema_version":1,"models":[]}"#;
        assert_eq!(check_results_file("target/ir_smoke.json", ok), Vec::new());
        let drifted = r#"{"schema":"edgepc-ir-smoke","schema_version":9,"models":[]}"#;
        assert_eq!(check_results_file("target/ir_smoke.json", drifted).len(), 1);
    }

    #[test]
    fn serve_json_is_pinned_by_basename_anywhere() {
        let ok = r#"{"schema":"edgepc-serve","schema_version":1,"outcome":{}}"#;
        assert_eq!(check_results_file("results/serve.json", ok), Vec::new());
        assert_eq!(check_results_file("target/serve.json", ok), Vec::new());
        let drifted = r#"{"schema":"edgepc-bench","schema_version":1}"#;
        assert_eq!(check_results_file("target/serve.json", drifted).len(), 1);
        assert_eq!(check_results_file("results/serve.json", "{}").len(), 2);
    }
}
