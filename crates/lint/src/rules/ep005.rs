//! **EP005 — results-schema hygiene.**
//!
//! Committed `results/*.json` artifacts are inputs to the benchmark
//! comparator and the paper-figure tooling; a file that no longer parses,
//! or a `BENCH.json` whose schema drifted without a version bump, poisons
//! every downstream comparison. This rule re-parses each committed
//! artifact with the std-only JSON parser and pins `BENCH.json` to a
//! known schema: `"schema": "edgepc-bench"` with `schema_version` in
//! [`KNOWN_BENCH_VERSIONS`].

use crate::diag::Diagnostic;
use crate::json_lite::{self, JsonValue};

/// BENCH.json schema versions this linter understands. Bump alongside
/// `edgepc-perf`'s emitter when the schema changes shape.
pub const KNOWN_BENCH_VERSIONS: &[i64] = &[1];

/// Checks one committed results artifact. `rel` is repo-relative
/// (`results/foo.json`); BENCH.json gets the schema pinning on top of the
/// parse check.
pub fn check_results_file(rel: &str, src: &str) -> Vec<Diagnostic> {
    let doc = match json_lite::parse(src) {
        Ok(d) => d,
        Err(e) => {
            return vec![Diagnostic::new(
                "EP005",
                rel,
                e.line,
                0,
                format!(
                    "committed results artifact does not parse as JSON: {}",
                    e.message
                ),
            )
            .with_suggestion("re-run the emitting harness or delete the stale artifact")];
        }
    };
    let is_bench = rel
        .rsplit('/')
        .next()
        .is_some_and(|name| name == "BENCH.json");
    if !is_bench {
        return Vec::new();
    }

    let mut out = Vec::new();
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("edgepc-bench") => {}
        Some(other) => out.push(Diagnostic::new(
            "EP005",
            rel,
            0,
            0,
            format!("BENCH.json declares schema {other:?}, expected \"edgepc-bench\""),
        )),
        None => out.push(Diagnostic::new(
            "EP005",
            rel,
            0,
            0,
            "BENCH.json is missing the `schema` marker".to_string(),
        )),
    }
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::as_f64)
        .and_then(|v| {
            let iv = v as i64;
            // Versions are small integers; reject fractional values.
            if (v - iv as f64).abs() < 1e-9 {
                Some(iv)
            } else {
                None
            }
        });
    match version {
        Some(v) if KNOWN_BENCH_VERSIONS.contains(&v) => {}
        Some(v) => out.push(
            Diagnostic::new(
                "EP005",
                rel,
                0,
                0,
                format!(
                    "BENCH.json schema_version {v} is unknown (known: {KNOWN_BENCH_VERSIONS:?})"
                ),
            )
            .with_suggestion("teach edgepc-lint the new version when the perf schema is bumped"),
        ),
        None => out.push(Diagnostic::new(
            "EP005",
            rel,
            0,
            0,
            "BENCH.json is missing an integer `schema_version`".to_string(),
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_bench_and_plain_results_pass() {
        let bench = r#"{"schema":"edgepc-bench","schema_version":1,"scenarios":[]}"#;
        assert_eq!(check_results_file("results/BENCH.json", bench), Vec::new());
        assert_eq!(
            check_results_file("results/fig03.json", r#"{"anything": [1, 2]}"#),
            Vec::new()
        );
    }

    #[test]
    fn unparsable_artifact_flagged_with_line() {
        let got = check_results_file("results/broken.json", "{\n  \"a\": [1,\n}");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn bench_schema_drift_flagged() {
        let wrong_schema = r#"{"schema":"other","schema_version":1}"#;
        let wrong_version = r#"{"schema":"edgepc-bench","schema_version":99}"#;
        let missing = r#"{"scenarios":[]}"#;
        assert_eq!(
            check_results_file("results/BENCH.json", wrong_schema).len(),
            1
        );
        assert_eq!(
            check_results_file("results/BENCH.json", wrong_version).len(),
            1
        );
        assert_eq!(check_results_file("results/BENCH.json", missing).len(), 2);
    }
}
