//! EP006 — lock discipline.
//!
//! The serving plane takes multiple locks per request; a single inverted
//! pair anywhere in `serve`/`trace` is a latent deadlock that runtime
//! tests only catch if they hit the bad interleaving. This rule checks
//! the ordering *statically*:
//!
//! 1. Every mutex acquisition site is declared in `LINT.toml`
//!    (`[[lock.site]]`: file + receiver chain + lock name), and every
//!    lock has a rank — its position in `lock.ranking`.
//! 2. The analysis extracts per-function acquisition sites (including
//!    the poison-tolerant wrapper idiom `fn lock(&self) ->
//!    MutexGuard<…>`), estimates each guard's held region (chained
//!    temporary → to end of statement; `let`-bound → to `drop(guard)` or
//!    the end of the enclosing block), and propagates acquisition sets
//!    over the call graph — including closures passed to functions that
//!    invoke a callback parameter while holding a lock (the
//!    `push_with(req, |depth| …)` shape).
//! 3. Every held-while-acquiring edge `L → M` must ascend the declared
//!    ranking. Descending or reentrant edges, undeclared `.lock()`
//!    calls in scoped crates, and stale declarations (a site or ranking
//!    entry matching nothing) are diagnostics.
//!
//! The analysis is a sound-enough approximation, not an alias analysis:
//! receiver chains are matched textually per file, callees are resolved
//! same-file-first then by name across the scoped crates, and `Condvar::
//! wait` is understood to *release* its guard (blocking with a rank
//! token held is safe — the lock itself is free).

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LockConfig;
use crate::diag::Diagnostic;
use crate::rules::SourceModel;
use crate::syntax::{self, FileSyntax};

/// Adapter methods that are part of an acquisition expression, not a use
/// of the guard: `lock().unwrap_or_else(PoisonError::into_inner)` etc.
const POISON_ADAPTERS: &[&str] = &["unwrap_or_else", "unwrap", "expect"];

/// One file participating in the analysis.
pub struct LockFile<'a> {
    pub rel: &'a str,
    pub model: &'a SourceModel,
    pub syntax: &'a FileSyntax,
}

/// One mutex acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Index into `LockConfig::ranking`.
    lock: usize,
    /// Code index of the acquiring token (`lock` ident or wrapper callee).
    ci: usize,
    /// Code-index extent over which the guard is considered held.
    region: (usize, usize),
}

/// A call site surviving classification (not itself an acquisition).
#[derive(Debug, Clone)]
struct Call {
    ci: usize,
    /// Indices into the fn table of possible callees.
    callees: Vec<usize>,
    /// Argument paren range, for closure-literal extraction.
    args: (usize, usize),
}

struct FnNode {
    file: usize,
    name: String,
    /// `Some(type)` when the fn sits in an `impl` block.
    impl_of: Option<String>,
    body: Option<(usize, usize)>,
    /// Callback-typed parameter names (`impl FnOnce(…)` etc.).
    callback_params: Vec<String>,
    /// Returns a guard (`-> MutexGuard<…>`): calls to it acquire its
    /// direct locks in the *caller*.
    is_wrapper: bool,
    acqs: Vec<Acq>,
    calls: Vec<Call>,
    /// Locks this fn may acquire, transitively.
    acquires: BTreeSet<usize>,
    /// Locks held at the point(s) where this fn invokes its callback
    /// parameters.
    callbacks_under: BTreeSet<usize>,
}

/// Runs the workspace-level lock-discipline analysis over the files of
/// the crates named in `cfg.crates`.
pub fn check_workspace(files: &[LockFile<'_>], cfg: &LockConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // ---- fn table ---------------------------------------------------------
    let mut fns: Vec<FnNode> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for info in &file.syntax.fns {
            if info.is_test {
                continue;
            }
            fns.push(FnNode {
                file: fi,
                name: info.name.clone(),
                impl_of: info.impl_of.clone(),
                body: info.body,
                callback_params: info
                    .params
                    .iter()
                    .filter(|p| p.is_callback())
                    .map(|p| p.name.clone())
                    .collect(),
                is_wrapper: info.ret.contains("MutexGuard") || info.ret.contains("Ranked"),
                acqs: Vec::new(),
                calls: Vec::new(),
                acquires: BTreeSet::new(),
                callbacks_under: BTreeSet::new(),
            });
        }
    }

    // Nested fns: when scanning a body, skip sub-ranges owned by other fns.
    let child_ranges = |fidx: usize, fns: &[FnNode]| -> Vec<(usize, usize)> {
        let Some((open, close)) = fns[fidx].body else {
            return Vec::new();
        };
        fns.iter()
            .enumerate()
            .filter(|&(j, f)| {
                j != fidx
                    && f.file == fns[fidx].file
                    && f.body.is_some_and(|(o, c)| open < o && c < close)
            })
            .filter_map(|(_, f)| f.body)
            .collect()
    };

    // ---- pass 1: direct acquisitions + undeclared-lock diagnostics --------
    let mut site_used = vec![false; cfg.sites.len()];
    for fidx in 0..fns.len() {
        let Some((open, close)) = fns[fidx].body else {
            continue;
        };
        let file = &files[fns[fidx].file];
        let skip = child_ranges(fidx, &fns);
        let code = file.model.code_indices();
        let mut acqs = Vec::new();
        for call in syntax::calls_in(file.model, open + 1, close.saturating_sub(1)) {
            if call.name != "lock" || !call.is_method {
                continue;
            }
            if in_ranges(call.ci, &skip) {
                continue;
            }
            let recv = call.recv_path();
            let matched = cfg
                .sites
                .iter()
                .enumerate()
                .find(|(_, s)| s.path == file.rel && s.recv == recv);
            if let Some((si, site)) = matched {
                site_used[si] = true;
                // rank() is total here: parse_config rejects sites whose
                // lock is absent from the ranking.
                if let Some(lock) = cfg.rank(&site.lock) {
                    let region = guard_region(file.model, call.ci, close);
                    acqs.push(Acq {
                        lock,
                        ci: call.ci,
                        region,
                    });
                }
                continue;
            }
            // `self.lock()` (and friends): a wrapper call, classified in
            // pass 2. Anything else is an undeclared acquisition.
            if resolve_callees(&fns, fidx, &call.name, &call.recv, call.is_method)
                .iter()
                .any(|&c| fns[c].is_wrapper)
            {
                continue;
            }
            let tok = file.model.token(code[call.ci]);
            out.push(
                Diagnostic::new(
                    "EP006",
                    file.rel,
                    tok.line,
                    tok.col,
                    format!(
                        "undeclared mutex acquisition `{recv}.lock()` in `{}`: every lock in a \
                         ranked crate needs a `[[lock.site]]` entry in LINT.toml",
                        fns[fidx].name
                    ),
                )
                .with_item(fns[fidx].name.clone())
                .with_suggestion(
                    "declare the site (lock name, path, recv) and place the lock in `lock.ranking`",
                ),
            );
        }
        fns[fidx].acqs = acqs;
    }

    // ---- pass 2: wrapper calls become acquisitions; remaining calls -------
    for fidx in 0..fns.len() {
        let Some((open, close)) = fns[fidx].body else {
            continue;
        };
        let file = &files[fns[fidx].file];
        let skip = child_ranges(fidx, &fns);
        let mut calls = Vec::new();
        let mut wrapper_acqs = Vec::new();
        for call in syntax::calls_in(file.model, open + 1, close.saturating_sub(1)) {
            if in_ranges(call.ci, &skip) {
                continue;
            }
            // Already classified as a direct acquisition in pass 1.
            if fns[fidx].acqs.iter().any(|a| a.ci == call.ci) {
                continue;
            }
            let callees = resolve_callees(&fns, fidx, &call.name, &call.recv, call.is_method);
            if callees.is_empty() {
                continue;
            }
            let wrapped: BTreeSet<usize> = callees
                .iter()
                .filter(|&&c| fns[c].is_wrapper)
                .flat_map(|&c| fns[c].acqs.iter().map(|a| a.lock))
                .collect();
            if !wrapped.is_empty() {
                let region = guard_region(file.model, call.ci, close);
                for lock in wrapped {
                    wrapper_acqs.push(Acq {
                        lock,
                        ci: call.ci,
                        region,
                    });
                }
                continue;
            }
            calls.push(Call {
                ci: call.ci,
                callees,
                args: call.args,
            });
        }
        fns[fidx].acqs.extend(wrapper_acqs);
        fns[fidx].calls = calls;
    }

    // ---- pass 3: transitive acquisition sets (fixpoint) -------------------
    for f in &mut fns {
        f.acquires = f.acqs.iter().map(|a| a.lock).collect();
    }
    loop {
        let mut changed = false;
        for fidx in 0..fns.len() {
            let mut add: BTreeSet<usize> = BTreeSet::new();
            for call in &fns[fidx].calls {
                for &callee in &call.callees {
                    add.extend(fns[callee].acquires.iter().copied());
                }
            }
            for lock in add {
                changed |= fns[fidx].acquires.insert(lock);
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 4: callbacks_under — callback invoked inside a held region --
    for fidx in 0..fns.len() {
        if fns[fidx].callback_params.is_empty() {
            continue;
        }
        let mut under = BTreeSet::new();
        for acq in &fns[fidx].acqs {
            let invoked = fns[fidx].calls.iter().any(|c| {
                acq.region.0 <= c.ci && c.ci <= acq.region.1 && {
                    let file = &files[fns[fidx].file];
                    let code = file.model.code_indices();
                    let name = &file.model.token(code[c.ci]).text;
                    fns[fidx].callback_params.contains(name)
                }
            });
            // Call extraction drops calls it can't resolve to a workspace
            // fn, so re-scan the region for `param(` directly.
            let file = &files[fns[fidx].file];
            let direct = syntax::calls_in(file.model, acq.region.0, acq.region.1)
                .iter()
                .any(|c| fns[fidx].callback_params.contains(&c.name) && c.recv.is_empty());
            if invoked || direct {
                under.insert(acq.lock);
            }
        }
        fns[fidx].callbacks_under = under;
    }

    // ---- pass 5: edges ----------------------------------------------------
    // (from, to, file, line, col, via) — BTreeMap dedupes repeat sites.
    let mut edges: BTreeMap<(usize, usize), (usize, usize, usize, String)> = BTreeMap::new();
    for fidx in 0..fns.len() {
        let file = &files[fns[fidx].file];
        let code = file.model.code_indices();
        let skip = child_ranges(fidx, &fns);
        for acq in &fns[fidx].acqs {
            // Inner acquisitions while this guard is held.
            for inner in &fns[fidx].acqs {
                if inner.ci > acq.ci && inner.ci <= acq.region.1 && !in_ranges(inner.ci, &skip) {
                    let tok = file.model.token(code[inner.ci]);
                    edges.entry((acq.lock, inner.lock)).or_insert((
                        fns[fidx].file,
                        tok.line,
                        tok.col,
                        fns[fidx].name.clone(),
                    ));
                }
            }
            // Calls into lock-acquiring fns while this guard is held.
            for call in &fns[fidx].calls {
                if call.ci <= acq.ci || call.ci > acq.region.1 || in_ranges(call.ci, &skip) {
                    continue;
                }
                let tok = file.model.token(code[call.ci]);
                for &callee in &call.callees {
                    for &lock in &fns[callee].acquires {
                        edges.entry((acq.lock, lock)).or_insert((
                            fns[fidx].file,
                            tok.line,
                            tok.col,
                            format!("{} -> {}", fns[fidx].name, fns[callee].name),
                        ));
                    }
                }
            }
        }
        // Closure arguments passed to fns that run their callback under a
        // lock: the closure body executes with those locks held.
        for call in &fns[fidx].calls {
            let held: BTreeSet<usize> = call
                .callees
                .iter()
                .flat_map(|&c| fns[c].callbacks_under.iter().copied())
                .collect();
            if held.is_empty() {
                continue;
            }
            for closure in syntax::closures_in(file.model, call.args.0 + 1, call.args.1) {
                let (b0, b1) = closure.body;
                // Acquisitions inside the closure body.
                for inner in &fns[fidx].acqs {
                    if b0 <= inner.ci && inner.ci <= b1 {
                        let tok = file.model.token(code[inner.ci]);
                        for &h in &held {
                            edges.entry((h, inner.lock)).or_insert((
                                fns[fidx].file,
                                tok.line,
                                tok.col,
                                format!("closure in {}", fns[fidx].name),
                            ));
                        }
                    }
                }
                // Calls inside the closure body into acquiring fns.
                for inner_call in &fns[fidx].calls {
                    if !(b0 <= inner_call.ci && inner_call.ci <= b1) {
                        continue;
                    }
                    let tok = file.model.token(code[inner_call.ci]);
                    for &callee in &inner_call.callees {
                        for &lock in &fns[callee].acquires {
                            for &h in &held {
                                edges.entry((h, lock)).or_insert((
                                    fns[fidx].file,
                                    tok.line,
                                    tok.col,
                                    format!(
                                        "closure in {} -> {}",
                                        fns[fidx].name, fns[callee].name
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- pass 6: judge edges against the ranking --------------------------
    for ((from, to), (fi, line, col, via)) in &edges {
        if from < to {
            continue; // ascends the declared ranking
        }
        let rel = files[*fi].rel;
        let (from_name, to_name) = (&cfg.ranking[*from], &cfg.ranking[*to]);
        let msg = if from == to {
            format!("reentrant acquisition: `{to_name}` taken while already held (via {via})")
        } else {
            format!(
                "lock order violation: `{to_name}` (rank {to}) acquired while holding \
                 `{from_name}` (rank {from}) — the declared ranking requires the reverse (via {via})"
            )
        };
        out.push(
            Diagnostic::new("EP006", rel, *line, *col, msg)
                .with_item(to_name.clone())
                .with_suggestion(
                    "release the outer guard first, or adjust `lock.ranking` if the design order changed",
                ),
        );
    }

    // ---- pass 7: stale declarations ---------------------------------------
    for (si, used) in site_used.iter().enumerate() {
        if !used {
            let site = &cfg.sites[si];
            out.push(
                Diagnostic::new(
                    "EP006",
                    "LINT.toml",
                    0,
                    0,
                    format!(
                        "stale lock site: `{}` at `{}` (recv `{}`) matches no acquisition",
                        site.lock, site.path, site.recv
                    ),
                )
                .with_item(site.lock.clone())
                .with_suggestion("delete the entry or fix its path/recv"),
            );
        }
    }
    for (li, lock) in cfg.ranking.iter().enumerate() {
        if !cfg.sites.iter().any(|s| cfg.rank(&s.lock) == Some(li)) {
            out.push(
                Diagnostic::new(
                    "EP006",
                    "LINT.toml",
                    0,
                    0,
                    format!("ranked lock `{lock}` has no `[[lock.site]]` declaration"),
                )
                .with_item(lock.clone())
                .with_suggestion("declare its acquisition site or drop it from `lock.ranking`"),
            );
        }
    }

    out
}

fn in_ranges(ci: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(o, c)| o < ci && ci < c)
}

/// Resolves a call by name:
///
/// * `drop(x)` is `std::mem::drop` — never a workspace callee (explicit
///   guard releases must not resolve to `Drop` impls, which are invoked
///   implicitly and would fabricate edges at every release site);
/// * `self.m()` binds to the enclosing impl's method first, then any
///   same-file fn, then any method with that name in scope;
/// * other method calls (`x.m()`) match every impl method named `m` —
///   a union over possible receiver types, conservative but sound;
/// * path calls (`Type::f`, `Self::f`) bind to that type's impl (so
///   `Vec::new()` resolves to nothing rather than to every `new`);
/// * bare calls (`helper(…)`) bind to free fns named `helper`.
fn resolve_callees(
    fns: &[FnNode],
    caller: usize,
    name: &str,
    recv: &[String],
    is_method: bool,
) -> Vec<usize> {
    if name == "drop" {
        return Vec::new();
    }
    let caller_file = fns[caller].file;
    let by = |pred: &dyn Fn(&FnNode) -> bool| -> Vec<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.name == name && pred(f))
            .map(|(i, _)| i)
            .collect()
    };
    if is_method {
        if recv.len() == 1 && recv[0] == "self" {
            let same_impl = by(&|f: &FnNode| {
                f.file == caller_file && f.impl_of == fns[caller].impl_of && f.impl_of.is_some()
            });
            if !same_impl.is_empty() {
                return same_impl;
            }
            let same_file = by(&|f: &FnNode| f.file == caller_file);
            if !same_file.is_empty() {
                return same_file;
            }
        }
        return by(&|f: &FnNode| f.impl_of.is_some());
    }
    match recv.last() {
        Some(seg) => {
            let ty = if seg == "Self" {
                fns[caller].impl_of.clone()
            } else {
                Some(seg.clone())
            };
            let assoc = by(&|f: &FnNode| f.impl_of == ty);
            if !assoc.is_empty() {
                return assoc;
            }
            // `module::free_fn(…)`: the last path segment is a module,
            // not a type — fall through to free fns.
            by(&|f: &FnNode| f.impl_of.is_none())
        }
        None => by(&|f: &FnNode| f.impl_of.is_none()),
    }
}

/// Estimates the code-index extent over which the guard produced at
/// `acq_ci` is held. `body_close` bounds the scan.
fn guard_region(model: &SourceModel, acq_ci: usize, body_close: usize) -> (usize, usize) {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();

    // Step over the acquisition expression: `(…)` then poison adapters.
    let mut j = acq_ci + 1;
    if j < code.len() && text(j) == "(" {
        j = syntax::match_parens(model, j)
            .map(|c| c + 1)
            .unwrap_or(j + 1);
    }
    loop {
        if j + 2 < code.len()
            && text(j) == "."
            && POISON_ADAPTERS.contains(&text(j + 1))
            && text(j + 2) == "("
        {
            j = syntax::match_parens(model, j + 2)
                .map(|c| c + 1)
                .unwrap_or(j + 3);
        } else {
            break;
        }
    }

    // Is the statement a `let` binding? Walk back to the statement start.
    let mut k = acq_ci;
    let mut is_let = false;
    let mut binding: Option<String> = None;
    while k > 0 {
        k -= 1;
        match text(k) {
            ";" | "{" | "}" => break,
            "let" => {
                is_let = true;
                // Binding name: first ident after `let` (skipping `mut`).
                let mut b = k + 1;
                while b < acq_ci {
                    let t = text(b);
                    if t != "mut" && t != "(" {
                        binding = Some(t.to_string());
                        break;
                    }
                    b += 1;
                }
                break;
            }
            _ => {}
        }
    }

    if is_let {
        // Held to `drop(binding)` or to the end of the enclosing block.
        let block_end = enclosing_block_end(model, acq_ci, body_close);
        if let Some(name) = binding {
            let mut d = j;
            while d < block_end {
                if text(d) == "drop"
                    && d + 2 < code.len()
                    && text(d + 1) == "("
                    && text(d + 2) == name
                {
                    return (acq_ci, d);
                }
                d += 1;
            }
        }
        (acq_ci, block_end)
    } else {
        // Chained temporary: held to the end of the statement.
        let mut depth = 0i32;
        let mut d = j;
        while d <= body_close && d < code.len() {
            match text(d) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth > 0 => depth -= 1,
                ")" | "]" | "}" => return (acq_ci, d.saturating_sub(1)),
                ";" | "," if depth == 0 => return (acq_ci, d),
                _ => {}
            }
            d += 1;
        }
        (acq_ci, body_close)
    }
}

/// The code index of the `}` closing the innermost block containing
/// `ci`, bounded by `body_close`.
fn enclosing_block_end(model: &SourceModel, ci: usize, body_close: usize) -> usize {
    let code = model.code_indices();
    let text = |j: usize| model.token(code[j]).text.as_str();
    let mut depth = 0i32;
    let mut d = ci;
    while d <= body_close && d < code.len() {
        match text(d) {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    return d;
                }
                depth -= 1;
            }
            _ => {}
        }
        d += 1;
    }
    body_close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_config;

    fn run(sources: &[(&str, &str)], cfg_src: &str) -> Vec<Diagnostic> {
        let cfg = parse_config(cfg_src).expect("config");
        let lock = cfg.lock.expect("lock section");
        let models: Vec<(String, SourceModel)> = sources
            .iter()
            .map(|(rel, src)| ((*rel).to_string(), SourceModel::new(rel, src)))
            .collect();
        let syntaxes: Vec<FileSyntax> = models.iter().map(|(_, m)| FileSyntax::parse(m)).collect();
        let files: Vec<LockFile<'_>> = models
            .iter()
            .zip(&syntaxes)
            .map(|((rel, model), syntax)| LockFile { rel, model, syntax })
            .collect();
        check_workspace(&files, &lock)
    }

    const CFG: &str = r#"
[lock]
ranking = ["t.low", "t.high"]
crates = ["serve"]

[[lock.site]]
lock = "t.low"
path = "crates/serve/src/a.rs"
recv = "self.low"

[[lock.site]]
lock = "t.high"
path = "crates/serve/src/a.rs"
recv = "self.high"
"#;

    #[test]
    fn ascending_nesting_is_clean() {
        let src = r#"
use std::sync::{Mutex, MutexGuard, PoisonError};
pub struct S { low: Mutex<u64>, high: Mutex<u64> }
impl S {
    pub fn ok(&self) {
        let mut a = self.low.lock().unwrap_or_else(PoisonError::into_inner);
        *a += 1;
        let b = self.high.lock().unwrap_or_else(PoisonError::into_inner);
        drop(b);
    }
}
"#;
        let diags = run(&[("crates/serve/src/a.rs", src)], CFG);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn descending_nesting_is_flagged() {
        let src = r#"
use std::sync::{Mutex, PoisonError};
pub struct S { low: Mutex<u64>, high: Mutex<u64> }
impl S {
    pub fn bad(&self) {
        let mut b = self.high.lock().unwrap_or_else(PoisonError::into_inner);
        *b += 1;
        let a = self.low.lock().unwrap_or_else(PoisonError::into_inner);
        drop(a);
        drop(b);
    }
}
"#;
        let diags = run(&[("crates/serve/src/a.rs", src)], CFG);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("lock order violation")),
            "expected order violation: {diags:?}"
        );
    }

    #[test]
    fn early_drop_releases_the_guard() {
        let src = r#"
use std::sync::{Mutex, PoisonError};
pub struct S { low: Mutex<u64>, high: Mutex<u64> }
impl S {
    pub fn fine(&self) {
        let mut b = self.high.lock().unwrap_or_else(PoisonError::into_inner);
        *b += 1;
        drop(b);
        let a = self.low.lock().unwrap_or_else(PoisonError::into_inner);
        drop(a);
    }
}
"#;
        let diags = run(&[("crates/serve/src/a.rs", src)], CFG);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn interprocedural_edge_through_wrapper_and_call() {
        let a = r#"
use std::sync::{Mutex, MutexGuard, PoisonError};
pub struct S { low: Mutex<u64>, high: Mutex<u64> }
impl S {
    fn lock(&self) -> MutexGuard<'_, u64> {
        self.high.lock().unwrap_or_else(PoisonError::into_inner)
    }
    pub fn outer(&self) {
        let g = self.lock();
        self.touch_low();
        drop(g);
    }
    pub fn touch_low(&self) {
        let a = self.low.lock().unwrap_or_else(PoisonError::into_inner);
        drop(a);
    }
}
"#;
        let diags = run(&[("crates/serve/src/a.rs", a)], CFG);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("lock order violation")
                    && d.message.contains("outer -> touch_low")),
            "expected interprocedural violation: {diags:?}"
        );
    }

    #[test]
    fn callback_under_lock_propagates_to_closure_argument() {
        let cfg = r#"
[lock]
ranking = ["t.inner", "t.q"]
crates = ["serve"]

[[lock.site]]
lock = "t.q"
path = "crates/serve/src/q.rs"
recv = "self.inner"

[[lock.site]]
lock = "t.inner"
path = "crates/serve/src/e.rs"
recv = "self.state"
"#;
        let q = r#"
use std::sync::{Mutex, PoisonError};
pub struct Q { inner: Mutex<u64> }
impl Q {
    pub fn push_with(&self, on_admit: impl FnOnce(u64)) {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        *g += 1;
        on_admit(*g);
        drop(g);
    }
}
"#;
        let e = r#"
use std::sync::{Mutex, PoisonError};
pub struct E { state: Mutex<u64> }
impl E {
    pub fn submit(&self, q: &super::q::Q) {
        q.push_with(|depth| {
            let s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = depth + *s;
        });
    }
}
"#;
        let diags = run(
            &[("crates/serve/src/q.rs", q), ("crates/serve/src/e.rs", e)],
            cfg,
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("lock order violation")
                    && d.message.contains("closure in submit")),
            "expected closure-under-lock violation: {diags:?}"
        );
    }

    #[test]
    fn undeclared_and_stale_sites_are_flagged() {
        let src = r#"
use std::sync::{Mutex, PoisonError};
pub struct S { mystery: Mutex<u64> }
impl S {
    pub fn poke(&self) {
        let g = self.mystery.lock().unwrap_or_else(PoisonError::into_inner);
        drop(g);
    }
}
"#;
        let diags = run(&[("crates/serve/src/a.rs", src)], CFG);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("undeclared mutex acquisition")));
        // Both declared sites match nothing in this source.
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.message.contains("stale lock site"))
                .count(),
            2
        );
    }
}
