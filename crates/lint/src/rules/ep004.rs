//! **EP004 — dependency policy: std-only, workspace-internal deps.**
//!
//! Every `Cargo.toml` in the workspace may depend only on workspace
//! members (`foo.workspace = true` or `{ path = "…" }`). A version-string
//! dependency (`serde = "1.0"`) or a git/registry table is a violation:
//! the "runs on any edge device" claim rests on the workspace staying
//! pure-Rust/std-only, and a transitive crates.io pull would also break
//! the offline `ci.sh` guarantee.
//!
//! Checked sections: `[dependencies]`, `[dev-dependencies]`,
//! `[build-dependencies]`, any `[target.….dependencies]`, and — in the
//! root manifest — `[workspace.dependencies]`, where every entry must be
//! a `path` table (this is where "workspace = true" bottoms out).

use crate::diag::Diagnostic;
use crate::toml_lite::{self, TomlValue};

const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

pub fn check_manifest(rel: &str, src: &str) -> Vec<Diagnostic> {
    let doc = match toml_lite::parse(src) {
        Ok(d) => d,
        Err(e) => {
            return vec![Diagnostic::new(
                "EP004",
                rel,
                e.line,
                0,
                format!("manifest does not parse: {}", e.message),
            )];
        }
    };
    let mut out = Vec::new();

    for &section in DEP_SECTIONS {
        if let Some(deps) = doc.get(section) {
            check_dep_table(rel, src, section, deps, false, &mut out);
        }
    }
    // [target.'cfg(…)'.dependencies] tables.
    if let Some(targets) = doc.get("target").and_then(TomlValue::as_table) {
        for (target_name, per_target) in targets {
            for &section in DEP_SECTIONS {
                if let Some(deps) = per_target.get(section) {
                    let label = format!("target.{target_name}.{section}");
                    check_dep_table(rel, src, &label, deps, false, &mut out);
                }
            }
        }
    }
    // Root manifest: workspace.dependencies must bottom out in path deps.
    if let Some(ws_deps) = doc.get("workspace").and_then(|w| w.get("dependencies")) {
        check_dep_table(rel, src, "workspace.dependencies", ws_deps, true, &mut out);
    }
    out
}

/// `require_path`: in `[workspace.dependencies]` an entry must carry
/// `path` (there is no outer workspace to defer to).
fn check_dep_table(
    rel: &str,
    src: &str,
    section: &str,
    deps: &TomlValue,
    require_path: bool,
    out: &mut Vec<Diagnostic>,
) {
    let Some(entries) = deps.as_table() else {
        return;
    };
    for (name, spec) in entries {
        let ok = match spec {
            TomlValue::Table(_) => {
                let has_path = spec.get("path").and_then(TomlValue::as_str).is_some();
                let ws = spec
                    .get("workspace")
                    .and_then(TomlValue::as_bool)
                    .unwrap_or(false);
                let external = spec.get("git").is_some()
                    || spec.get("version").is_some()
                    || spec.get("registry").is_some();
                (has_path || (ws && !require_path)) && !external
            }
            _ => false,
        };
        if !ok {
            out.push(
                Diagnostic::new(
                    "EP004",
                    rel,
                    find_key_line(src, name),
                    0,
                    format!(
                        "[{section}] `{name}` is not a workspace/path dependency \
                         (std-only policy forbids registry/git deps)"
                    ),
                )
                .with_suggestion(format!(
                    "use `{name}.workspace = true` with a `path` entry in the root \
                     [workspace.dependencies], or drop the dependency"
                ))
                .with_item(name.as_str()),
            );
        }
    }
}

/// Best-effort line lookup for a dependency key, for clickable output.
fn find_key_line(src: &str, key: &str) -> usize {
    src.lines()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with(key) && t[key.len()..].trim_start().starts_with(['=', '.'])
        })
        .map(|i| i + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let src = r#"
[package]
name = "edgepc-x"

[dependencies]
edgepc-geom.workspace = true
edgepc-trace = { workspace = true }
local = { path = "../local" }

[dev-dependencies]
edgepc-data.workspace = true
"#;
        assert_eq!(check_manifest("crates/x/Cargo.toml", src), Vec::new());
    }

    #[test]
    fn registry_and_git_deps_flagged() {
        let src = r#"
[dependencies]
serde = "1.0"
rayon = { version = "1.8", features = ["std"] }
remote = { git = "https://example.com/remote" }
"#;
        let got = check_manifest("crates/x/Cargo.toml", src);
        let items: Vec<&str> = got.iter().filter_map(|d| d.item.as_deref()).collect();
        assert_eq!(items, vec!["serde", "rayon", "remote"]);
        assert_eq!(got[0].line, 3, "line lookup finds the dep key");
    }

    #[test]
    fn workspace_dependencies_must_be_path() {
        let src = r#"
[workspace.dependencies]
edgepc-geom = { path = "crates/geom" }
serde = { workspace = true }
"#;
        let got = check_manifest("Cargo.toml", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].item.as_deref(), Some("serde"));
    }
}
