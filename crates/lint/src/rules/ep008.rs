//! EP008 — steady-state allocation freedom.
//!
//! ROADMAP item 2's zero-allocation steady state means the designated
//! hot loops (model forwards, per-request serve paths, telemetry
//! recording) must not allocate once warm. `LINT.toml` designates the
//! scopes (`[[alloc.scope]]`: file + fn names); inside those fn bodies,
//! non-test code may not:
//!
//! * call allocating methods — `.to_vec()`, `.to_owned()`,
//!   `.to_string()`, `.clone()`, `.collect()`;
//! * invoke allocating macros — `vec![…]`, `format!(…)`;
//! * construct heap containers — `Vec/String/Box/VecDeque/HashMap/
//!   HashSet/BTreeMap::{new, with_capacity, from}`.
//!
//! Receivers routed through a `Scratch` pool (any receiver-chain
//! component containing `scratch`) are exempt — that is the sanctioned
//! reuse idiom. The rule is intraprocedural by design: factoring setup
//! allocation into an *undesignated* helper is the sanctioned escape for
//! first-observation/cold paths, and genuinely allocating steady-state
//! code takes an item-level waiver so the exception is visible.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::SourceModel;
use crate::syntax::{self, FileSyntax};

const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone", "collect"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

pub fn check(model: &SourceModel, syn: &FileSyntax, items: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let code = model.code_indices();
    let text = |ci: usize| model.token(code[ci]).text.as_str();
    let kind = |ci: usize| model.token(code[ci]).kind;

    for f in &syn.fns {
        if f.is_test || !items.iter().any(|i| i == &f.name) {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        // Skip nested fn items (their own designation applies, if any).
        let nested: Vec<(usize, usize)> = syn
            .fns
            .iter()
            .filter(|g| g.name != f.name && g.body.is_some_and(|(o, c)| open < o && c < close))
            .filter_map(|g| g.body)
            .collect();

        for ci in open + 1..close {
            if ci >= code.len() || kind(ci) != TokenKind::Ident {
                continue;
            }
            if nested.iter().any(|&(o, c)| o < ci && ci < c) {
                continue;
            }
            let name = text(ci);
            let next = if ci + 1 < code.len() {
                text(ci + 1)
            } else {
                ""
            };
            let prev = if ci > 0 { text(ci - 1) } else { "" };

            let construct = if ALLOC_METHODS.contains(&name) && prev == "." && next == "(" {
                let (recv, _) = syntax::recv_chain(model, ci);
                if recv
                    .iter()
                    .any(|c| c.to_ascii_lowercase().contains("scratch"))
                {
                    continue; // pooled reuse, the sanctioned idiom
                }
                Some(format!(".{name}()"))
            } else if ALLOC_MACROS.contains(&name) && next == "!" {
                Some(format!("{name}!"))
            } else if ALLOC_CTORS.contains(&name) && prev == "::" && next == "(" {
                let (recv, _) = syntax::recv_chain(model, ci);
                match recv.last() {
                    Some(ty) if ALLOC_TYPES.contains(&ty.as_str()) => {
                        Some(format!("{ty}::{name}()"))
                    }
                    _ => None,
                }
            } else {
                None
            };
            let Some(construct) = construct else { continue };

            let tok = model.token(code[ci]);
            let depth = syn.loop_depth_at(model, ci);
            let loc = if depth > 0 {
                format!(" (inside a loop, depth {depth})")
            } else {
                String::new()
            };
            out.push(
                Diagnostic::new(
                    "EP008",
                    &model.rel,
                    tok.line,
                    tok.col,
                    format!(
                        "steady-state allocation: `{construct}` in designated hot fn `{}`{loc}",
                        f.name
                    ),
                )
                .with_item(f.name.clone())
                .with_suggestion(
                    "route the buffer through the Scratch pool, factor the setup into an \
                     undesignated helper, or add an item-level EP008 waiver",
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, items: &[&str]) -> Vec<Diagnostic> {
        let model = SourceModel::new("crates/x/src/hot.rs", src);
        let syn = FileSyntax::parse(&model);
        let items: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        check(&model, &syn, &items)
    }

    #[test]
    fn allocations_in_designated_fn_are_flagged() {
        let src = r#"
pub fn hot(xs: &[u64]) -> u64 {
    let mut buf = Vec::new();
    for x in xs {
        buf.push(format!("{x}"));
    }
    let copy = xs.to_vec();
    copy.len() as u64 + buf.len() as u64
}
"#;
        let diags = run(src, &["hot"]);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.item.as_deref() == Some("hot")));
        assert!(diags.iter().any(|d| d.message.contains("Vec::new()")));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("format!") && d.message.contains("depth 1")),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.message.contains(".to_vec()")));
    }

    #[test]
    fn scratch_receivers_and_undesignated_fns_are_exempt() {
        let src = r#"
pub struct Scratch { buf: Vec<u64> }
pub fn hot(scratch: &mut Scratch, xs: &[u64]) -> u64 {
    let reused = scratch.buf.clone();
    cold_setup(xs).len() as u64 + reused.len() as u64
}
fn cold_setup(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}
"#;
        assert!(run(src, &["hot"]).is_empty());
    }

    #[test]
    fn test_code_in_designated_file_is_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn hot() {
        let _v = vec![1, 2, 3];
    }
}
"#;
        assert!(run(src, &["hot"]).is_empty());
    }
}
