//! **EP001 — panic-freedom in hot-path crates.**
//!
//! Non-test code in the hot-path crates (`geom`, `morton`, `sample`,
//! `neighbor`, `models`, `core`) must not call `.unwrap()` / `.expect()`
//! or invoke `panic!` / `todo!` / `unreachable!`: an inference call that
//! dies mid-pipeline on an edge device is a hard failure with no
//! supervisor to catch it.
//!
//! Allowed without a waiver:
//! - `assert!` family — documented precondition guards at API boundaries
//!   (the `# Panics` contract the seed already follows);
//! - `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` — total;
//! - `unimplemented!` — marks intentionally unsupported trait surface
//!   (e.g. `Layer` impls that do not participate in training);
//! - anything inside `#[test]` / `#[cfg(test)]` regions.
//!
//! Invariant failures that genuinely cannot propagate route through
//! `edgepc_geom::guard::{violation, required}` — the one waived diverging
//! site in `LINT.toml` — so the workspace's panic surface stays auditable
//! in a single place.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::SourceModel;

/// `.method()` calls banned in non-test hot-path code.
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];
/// `name!(…)` macros banned in non-test hot-path code.
const BANNED_MACROS: &[&str] = &["panic", "todo", "unreachable"];

pub fn check(model: &SourceModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &ti in model.code_indices() {
        let tok = model.token(ti);
        if tok.kind != TokenKind::Ident || model.in_test(ti) {
            continue;
        }
        let name = tok.text.as_str();
        if BANNED_METHODS.contains(&name) && model.prev_code(ti).is_some_and(|p| p.text == ".") {
            out.push(
                Diagnostic::new(
                    "EP001",
                    &model.rel,
                    tok.line,
                    tok.col,
                    format!("`.{name}()` in hot-path non-test code can panic at inference time"),
                )
                .with_suggestion(
                    "propagate the Option/Result, or route a real invariant through \
                     edgepc_geom::guard::required / guard::violation",
                )
                .with_item(name),
            );
        } else if BANNED_MACROS.contains(&name)
            && model.next_code(ti).is_some_and(|n| n.text == "!")
        {
            out.push(
                Diagnostic::new(
                    "EP001",
                    &model.rel,
                    tok.line,
                    tok.col,
                    format!("`{name}!` in hot-path non-test code can panic at inference time"),
                )
                .with_suggestion(
                    "return an error, or route the invariant through \
                     edgepc_geom::guard::violation (waived once in LINT.toml)",
                )
                .with_item(name),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceModel::new("crates/geom/src/x.rs", src))
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a == 0 { panic!("zero") }
    todo!()
}
"#;
        let items: Vec<String> = run(src).into_iter().filter_map(|d| d.item).collect();
        assert_eq!(items, vec!["unwrap", "expect", "panic", "todo"]);
    }

    #[test]
    fn allows_total_variants_asserts_and_tests() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    assert!(true, "precondition");
    // a comment mentioning unwrap() and panic! is fine
    let s = "strings with unwrap() and panic! are fine";
    let _ = s;
    x.unwrap_or_default() + x.unwrap_or(0)
}

#[test]
fn t() {
    Some(1).unwrap();
    panic!("tests may panic");
}
"#;
        assert_eq!(run(src), Vec::new());
    }

    #[test]
    fn flags_qualified_macro_paths() {
        let src = "pub fn f() { core::panic!(\"x\") }";
        assert_eq!(run(src).len(), 1);
    }
}
