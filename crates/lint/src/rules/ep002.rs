//! **EP002 — no float equality outside tests.**
//!
//! `==` / `!=` against a float literal in production code is almost always
//! a latent bug: accumulated rounding makes exact equality unreliable, and
//! `x == 0.0` guards silently misbehave for `-0.0` and `NaN`. Production
//! code should compare with a tolerance, use `total_cmp`, or restructure
//! (`scale > 0.0`).
//!
//! Detection is lexical: a `==` / `!=` token with a float literal on
//! either side (an optional unary `-` is looked through). Variable-vs-
//! variable float comparisons are invisible to a lexer and are left to
//! clippy's `float_cmp` — this rule exists so the *committed* literal
//! comparisons that drove paper-figure bugs stay impossible.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::SourceModel;
use crate::syntax::FileSyntax;

pub fn check(model: &SourceModel, syntax: &FileSyntax) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let code = model.code_indices();
    for (ci, &ti) in code.iter().enumerate() {
        let tok = model.token(ti);
        if tok.kind != TokenKind::Punct
            || !(tok.text == "==" || tok.text == "!=")
            || model.in_test(ti)
        {
            continue;
        }
        let prev_float = ci
            .checked_sub(1)
            .map(|p| model.token(code[p]).is_float_literal())
            .unwrap_or(false);
        let next_float = {
            // Look through a unary minus: `x == -1.0`.
            let mut n = ci + 1;
            if code.get(n).is_some_and(|&i| model.token(i).text == "-") {
                n += 1;
            }
            code.get(n)
                .is_some_and(|&i| model.token(i).is_float_literal())
        };
        if prev_float || next_float {
            let mut d = Diagnostic::new(
                "EP002",
                &model.rel,
                tok.line,
                tok.col,
                format!(
                    "float literal compared with `{}` in non-test code",
                    tok.text
                ),
            )
            .with_suggestion(
                "compare with a tolerance ((a - b).abs() < eps), use total_cmp, or \
                 restructure the guard (e.g. `scale > 0.0`)",
            );
            // The syntactic tier names the enclosing fn so waivers can be
            // item-scoped instead of silencing the whole file.
            if let Some(f) = syntax.enclosing_fn(ci) {
                d = d.with_item(f.name.clone());
            }
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = SourceModel::new("crates/nn/src/x.rs", src);
        let syntax = FileSyntax::parse(&model);
        check(&model, &syntax)
    }

    #[test]
    fn flags_literal_comparisons_both_sides() {
        let src = r#"
pub fn f(x: f32, acc: f64) -> bool {
    let a = x == 0.0;
    let b = 1.0 != x;
    let c = acc == -2.5e-3;
    a && b && c
}
"#;
        let diags = run(src);
        assert_eq!(diags.len(), 3);
        // Diagnostics are item-scoped to the enclosing fn.
        assert!(diags.iter().all(|d| d.item.as_deref() == Some("f")));
    }

    #[test]
    fn ignores_integers_ranges_and_tests() {
        let src = r#"
pub fn f(x: usize, y: f32) -> bool {
    let ints = x == 0;
    let range = (0..4).len() == x;
    let le = y <= 1.0; // ordering comparisons are fine
    ints && range && le
}

#[test]
fn t() {
    assert!(super::g() == 1.0);
}
"#;
        assert_eq!(run(src), Vec::new());
    }
}
