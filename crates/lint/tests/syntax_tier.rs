//! Edge-case coverage for the syntactic tier (`edgepc_lint::syntax`)
//! through the public API: raw strings, nested block comments, macro
//! bodies, impl/closure/brace nesting, loop depth, visibility, callback
//! params, and receiver-chain recovery. These are the shapes that broke
//! naive token scanners; each test pins the recovery the parser-backed
//! rules (EP006–EP008) depend on.

// Test-support indexing helpers sit outside #[test] fns, where
// clippy.toml's allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use edgepc_lint::rules::SourceModel;
use edgepc_lint::syntax::{calls_in, closures_in, FileSyntax, FnInfo};

fn parse(src: &str) -> (SourceModel, FileSyntax) {
    let model = SourceModel::new("crates/x/src/lib.rs", src);
    let syntax = FileSyntax::parse(&model);
    (model, syntax)
}

fn find<'s>(syntax: &'s FileSyntax, name: &str) -> &'s FnInfo {
    syntax
        .fns
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("fn `{name}` not recovered"))
}

#[test]
fn raw_strings_with_braces_do_not_skew_body_extents() {
    let src = r####"
pub fn noisy() -> u32 {
    let _s = r#"{ not a block } fn fake() {"#;
    let _t = "}} {{ \" ";
    7
}
fn after() {}
"####;
    let (_m, syntax) = parse(src);
    // Both fns recovered: the braces inside the literals were inert, so
    // `noisy`'s body closed where the real `}` sits and `after` was seen.
    assert_eq!(syntax.fns.len(), 2);
    let noisy = find(&syntax, "noisy");
    assert!(noisy.body.is_some(), "body extent lost to raw string");
    assert_eq!(noisy.ret, "u32");
    find(&syntax, "after");
}

#[test]
fn nested_block_comments_hide_fake_items() {
    let src = "
/* outer /* nested fn ghost() { */ still comment fn ghost2() { */
fn real() { let _ = 1; }
";
    let (_m, syntax) = parse(src);
    let names: Vec<&str> = syntax.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["real"], "commented-out fns must not surface");
}

#[test]
fn macro_bodies_degrade_without_panicking() {
    // macro_rules! bodies are token soup ($x:expr, unmatched-looking
    // fragments); recovery must stay total and still see the real fn.
    let src = "
macro_rules! mk {
    ($n:ident) => {
        fn $n() -> u32 { 1 }
    };
}
pub fn genuine() -> bool { true }
";
    let (_m, syntax) = parse(src);
    find(&syntax, "genuine");
}

#[test]
fn impl_nesting_attributes_fns_to_their_self_type() {
    let src = "
struct A;
struct B;
impl A {
    pub fn on_a(&self) {}
    fn helper() {
        fn nested_free() {}
    }
}
impl B {
    pub(crate) fn on_b(&mut self) {}
}
fn free() {}
";
    let (_m, syntax) = parse(src);
    assert_eq!(find(&syntax, "on_a").impl_of.as_deref(), Some("A"));
    assert_eq!(find(&syntax, "helper").impl_of.as_deref(), Some("A"));
    assert_eq!(find(&syntax, "on_b").impl_of.as_deref(), Some("B"));
    assert_eq!(find(&syntax, "free").impl_of, None);
    // A fn nested inside a method still sits lexically inside `impl A`.
    assert_eq!(find(&syntax, "nested_free").impl_of.as_deref(), Some("A"));
    // Visibility: bare `pub` only.
    assert!(find(&syntax, "on_a").is_pub);
    assert!(!find(&syntax, "on_b").is_pub, "pub(crate) is not pub");
    assert!(!find(&syntax, "helper").is_pub);
}

#[test]
fn loop_depth_counts_nesting_not_occurrences() {
    let src = "
fn flat(xs: &[u32]) -> u32 {
    let mut t = 0;
    for x in xs { t += x; }
    for x in xs { t += x; }
    t
}
fn deep(xs: &[u32]) -> u32 {
    let mut t = 0;
    for x in xs {
        while t < 10 {
            loop { t += x; break; }
        }
    }
    t
}
";
    let (_m, syntax) = parse(src);
    assert_eq!(find(&syntax, "flat").max_loop_depth, 1);
    assert_eq!(find(&syntax, "deep").max_loop_depth, 3);
}

#[test]
fn params_and_callback_bounds_are_recovered() {
    let src = "
pub fn apply(n: usize, f: impl FnMut(usize) -> u32, tag: &str) -> u32 {
    let _ = tag;
    f(n)
}
";
    let (_m, syntax) = parse(src);
    let apply = find(&syntax, "apply");
    let names: Vec<&str> = apply.params.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["n", "f", "tag"]);
    assert!(apply.params[1].is_callback(), "impl FnMut is a callback");
    assert!(!apply.params[0].is_callback());
    assert!(!apply.params[2].is_callback());
}

#[test]
fn trait_method_declarations_have_no_body() {
    let src = "
trait T {
    fn required(&self) -> u32;
    fn provided(&self) -> u32 { 0 }
}
";
    let (_m, syntax) = parse(src);
    assert!(find(&syntax, "required").body.is_none());
    assert!(find(&syntax, "provided").body.is_some());
}

#[test]
fn test_region_fns_are_marked() {
    let src = "
fn prod() {}
#[cfg(test)]
mod tests {
    #[test]
    fn checks() { assert!(true); }
}
";
    let (_m, syntax) = parse(src);
    assert!(!find(&syntax, "prod").is_test);
    assert!(find(&syntax, "checks").is_test);
}

#[test]
fn closures_in_body_recover_params_and_both_body_forms() {
    let src = "
fn host(xs: &[u32]) -> u32 {
    let braced = xs.iter().map(|x| { x + 1 }).sum::<u32>();
    let bare = xs.iter().fold(0, |acc, x| acc + x);
    braced + bare
}
";
    let (model, syntax) = parse(src);
    let host = find(&syntax, "host");
    let (from, to) = host.body.expect("host has a body");
    let closures = closures_in(&model, from, to);
    assert_eq!(closures.len(), 2, "one braced, one bare-expression closure");
    assert_eq!(closures[0].params, ["x"]);
    assert_eq!(closures[1].params, ["acc", "x"]);
}

#[test]
fn call_sites_carry_normalized_receiver_chains() {
    let src = "
struct S { inner: std::sync::Mutex<u32> }
impl S {
    fn shard(&self) -> &std::sync::Mutex<u32> { &self.inner }
    fn go(&self) -> u32 {
        let a = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _v: Vec<u32> = Vec::new();
        let b = self.shard().lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
}
";
    let (model, syntax) = parse(src);
    let go = find(&syntax, "go");
    let (from, to) = go.body.expect("go has a body");
    let calls = calls_in(&model, from, to);
    let lock_recvs: Vec<String> = calls
        .iter()
        .filter(|c| c.name == "lock")
        .map(edgepc_lint::syntax::CallSite::recv_path)
        .collect();
    assert_eq!(lock_recvs, ["self.inner", "self.shard()"]);
    let vec_new = calls
        .iter()
        .find(|c| c.name == "new")
        .expect("Vec::new call site");
    assert!(!vec_new.is_method, "Vec::new is a path call, not a method");
    assert_eq!(vec_new.recv_path(), "Vec");
}

#[test]
fn unbalanced_input_degrades_to_fewer_items_not_a_panic() {
    // Totality contract: truncated/garbled source never panics the tier.
    for src in [
        "fn truncated() { let x = (",
        "impl {{{",
        "fn a(} fn b() {}",
        "}} fn tail() {}",
    ] {
        let model = SourceModel::new("crates/x/src/bad.rs", src);
        let _ = FileSyntax::parse(&model);
    }
}
