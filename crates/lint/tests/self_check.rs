//! The workspace must pass its own lint: every EP rule clean on the real
//! tree, with every LINT.toml waiver matching a live diagnostic. This is
//! the same run `ci.sh` performs via `lint_all`.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let report = edgepc_lint::run_workspace(root).expect("workspace run");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the run actually covered the tree.
    assert!(
        report.files_scanned > 100,
        "scanned {}",
        report.files_scanned
    );
    assert!(report.waived > 0, "LINT.toml waivers should be in use");
}
