//! End-to-end runs over the fixture mini-workspaces in
//! `tests/fixtures/`: the violating tree must trip every rule (EP000
//! through EP008) and the clean tree none, both through the library API
//! and through the `lint_all` binary.

// Test-support helpers sit outside #[test] fns, where clippy.toml's
// allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violating_fixture_trips_every_rule() {
    let report = edgepc_lint::run_workspace(&fixture("violating")).expect("fixture run");
    let rules: BTreeSet<&str> = report.violations.iter().map(|d| d.rule).collect();
    for expected in [
        "EP000", "EP001", "EP002", "EP003", "EP004", "EP005", "EP006", "EP007", "EP008",
    ] {
        assert!(
            rules.contains(expected),
            "expected a {expected} violation, got rules {rules:?}:\n{}",
            report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    assert!(!report.is_clean());
}

#[test]
fn violating_fixture_pinpoints_the_planted_sites() {
    let report = edgepc_lint::run_workspace(&fixture("violating")).expect("fixture run");
    let has = |rule: &str, file: &str, needle: &str| {
        report
            .violations
            .iter()
            .any(|d| d.rule == rule && d.file == file && d.message.contains(needle))
    };
    // EP001: both the unwrap and the panic! in the hot-crate source.
    assert!(has("EP001", "crates/geom/src/lib.rs", "unwrap"));
    assert!(has("EP001", "crates/geom/src/lib.rs", "panic!"));
    // EP002: the float compare outside tests.
    assert!(has("EP002", "crates/geom/src/lib.rs", "=="));
    // EP003: the span-less public function in a span-covered file.
    assert!(has("EP003", "crates/sample/src/upsample.rs", "interpolate"));
    // EP004: both the versioned workspace dep and the registry dep.
    assert!(has("EP004", "Cargo.toml", "serde"));
    assert!(has("EP004", "crates/geom/Cargo.toml", "rand"));
    // EP005: the unknown schema version and the unparsable file.
    assert!(has("EP005", "results/BENCH.json", "schema_version"));
    assert!(report
        .violations
        .iter()
        .any(|d| d.rule == "EP005" && d.file == "results/broken.json"));
    // EP000: the deliberately stale waiver.
    assert!(has("EP000", "LINT.toml", "crates/morton/src/lib.rs"));
    // EP006: the descending acquisition, the undeclared mutex, the stale
    // site declaration, and the ghost ranking entry.
    assert!(has(
        "EP006",
        "crates/serve/src/queue.rs",
        "lock order violation"
    ));
    assert!(has(
        "EP006",
        "crates/serve/src/queue.rs",
        "undeclared mutex acquisition `self.count.lock()`"
    ));
    assert!(has("EP006", "LINT.toml", "stale lock site"));
    assert!(has("EP006", "LINT.toml", "fixture.ghost"));
    // EP007: hash-order leak, wall-clock read, and the par-fold race.
    assert!(has("EP007", "crates/geom/src/detmap.rs", "hash-order leak"));
    assert!(has("EP007", "crates/geom/src/detmap.rs", "Instant::now"));
    assert!(has("EP007", "crates/geom/src/detmap.rs", "par_for"));
    // EP008: both planted allocations in the designated fn, and none in
    // the undesignated sibling.
    assert!(has("EP008", "crates/serve/src/record.rs", "`format!`"));
    assert!(has("EP008", "crates/serve/src/record.rs", "`.clone()`"));
    assert!(!report
        .violations
        .iter()
        .any(|d| d.rule == "EP008" && d.item.as_deref() == Some("render_cold")));
    // EP008 in the fused-executor plant: the per-call buffer, the staged
    // copy, and nothing from the undesignated plan constructor.
    assert!(has("EP008", "crates/serve/src/fused.rs", "`vec!`"));
    assert!(has("EP008", "crates/serve/src/fused.rs", "`.collect()`"));
    assert!(!report
        .violations
        .iter()
        .any(|d| d.rule == "EP008" && d.item.as_deref() == Some("plan_cold")));
}

#[test]
fn rules_filter_runs_only_the_named_rules() {
    let report = edgepc_lint::run_workspace_with(
        &fixture("violating"),
        Some(&["EP006".to_string(), "EP008".to_string()]),
    )
    .expect("filtered run");
    let rules: BTreeSet<&str> = report.violations.iter().map(|d| d.rule).collect();
    assert!(rules.contains("EP006"));
    assert!(rules.contains("EP008"));
    // Skipped rules report nothing — including EP000 for the stale EP001
    // waiver, which is exempt while its rule is not running.
    for skipped in [
        "EP000", "EP001", "EP002", "EP003", "EP004", "EP005", "EP007",
    ] {
        assert!(!rules.contains(skipped), "unexpected {skipped} diagnostic");
    }
    // Only the enabled rules (plus parse) are timed.
    assert!(report.timings_us.iter().any(|(r, _)| *r == "EP006"));
    assert!(!report.timings_us.iter().any(|(r, _)| *r == "EP007"));

    let unknown = edgepc_lint::run_workspace_with(&fixture("violating"), Some(&["EP999".into()]));
    assert!(unknown.is_err(), "unknown rule names must be rejected");
}

#[test]
fn clean_fixture_is_clean() {
    let report = edgepc_lint::run_workspace(&fixture("clean")).expect("fixture run");
    assert!(
        report.is_clean(),
        "clean fixture reported:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned >= 6, "sources + manifests + results");
}

fn run_lint_all(root: &Path, json_out: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lint_all"))
        .arg("--root")
        .arg(root)
        .arg("--json")
        .arg(json_out)
        .output()
        .expect("spawn lint_all")
}

#[test]
fn lint_all_binary_fails_on_violating_fixture() {
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("violating_lint.json");
    let out = run_lint_all(&fixture("violating"), &json);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["EP000", "EP001", "EP002", "EP003", "EP004", "EP005"] {
        assert!(stdout.contains(rule), "stdout missing {rule}:\n{stdout}");
    }
    // The machine-readable report parses and agrees it is not clean.
    let doc = edgepc_lint::json_lite::parse(&std::fs::read_to_string(&json).expect("lint.json"))
        .expect("valid report json");
    assert_eq!(
        doc.get("clean").and_then(|v| v.as_bool()),
        Some(false),
        "report must say clean=false"
    );
}

#[test]
fn lint_all_binary_honors_rules_filter() {
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("filtered_lint.json");
    let out = Command::new(env!("CARGO_BIN_EXE_lint_all"))
        .arg("--root")
        .arg(fixture("violating"))
        .arg("--rules")
        .arg("EP001")
        .arg("--json")
        .arg(&json)
        .output()
        .expect("spawn lint_all --rules");
    assert_eq!(out.status.code(), Some(1), "EP001 findings must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("[EP001]"),
        "stdout missing EP001:\n{stdout}"
    );
    for absent in ["EP002", "EP005", "EP000"] {
        assert!(
            !stdout.contains(&format!("[{absent}]")),
            "filtered run leaked {absent} diagnostics:\n{stdout}"
        );
    }
    // The summary carries per-rule wall time for the rules that ran.
    assert!(
        stdout.contains("EP001 ") && stdout.contains("ms"),
        "summary missing per-rule timing:\n{stdout}"
    );
}

/// The report `lint_all` emits must itself satisfy the EP005 schema pin:
/// a second invocation in `--results` mode validates the first run's
/// lint.json, which is exactly the check `ci.sh` performs after the gate.
#[test]
fn emitted_lint_json_passes_the_ep005_schema_pin() {
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("self_check_lint.json");
    run_lint_all(&fixture("clean"), &json);
    let out = Command::new(env!("CARGO_BIN_EXE_lint_all"))
        .arg("--results")
        .arg(&json)
        .output()
        .expect("spawn lint_all --results");
    assert_eq!(
        out.status.code(),
        Some(0),
        "lint.json failed its own schema pin; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // The timing breakdown rides along under the same schema version.
    let doc = edgepc_lint::json_lite::parse(&std::fs::read_to_string(&json).expect("lint.json"))
        .expect("valid report json");
    assert!(doc.get("timings_us").is_some(), "report missing timings_us");
}

#[test]
fn lint_all_binary_passes_on_clean_fixture() {
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("clean_lint.json");
    let out = run_lint_all(&fixture("clean"), &json);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture must exit 0; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let doc = edgepc_lint::json_lite::parse(&std::fs::read_to_string(&json).expect("lint.json"))
        .expect("valid report json");
    assert_eq!(doc.get("clean").and_then(|v| v.as_bool()), Some(true));
}
