//! End-to-end runs over the fixture mini-workspaces in
//! `tests/fixtures/`: the violating tree must trip every rule (EP000
//! through EP005) and the clean tree none, both through the library API
//! and through the `lint_all` binary.

// Test-support helpers sit outside #[test] fns, where clippy.toml's
// allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violating_fixture_trips_every_rule() {
    let report = edgepc_lint::run_workspace(&fixture("violating")).expect("fixture run");
    let rules: BTreeSet<&str> = report.violations.iter().map(|d| d.rule).collect();
    for expected in ["EP000", "EP001", "EP002", "EP003", "EP004", "EP005"] {
        assert!(
            rules.contains(expected),
            "expected a {expected} violation, got rules {rules:?}:\n{}",
            report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    assert!(!report.is_clean());
}

#[test]
fn violating_fixture_pinpoints_the_planted_sites() {
    let report = edgepc_lint::run_workspace(&fixture("violating")).expect("fixture run");
    let has = |rule: &str, file: &str, needle: &str| {
        report
            .violations
            .iter()
            .any(|d| d.rule == rule && d.file == file && d.message.contains(needle))
    };
    // EP001: both the unwrap and the panic! in the hot-crate source.
    assert!(has("EP001", "crates/geom/src/lib.rs", "unwrap"));
    assert!(has("EP001", "crates/geom/src/lib.rs", "panic!"));
    // EP002: the float compare outside tests.
    assert!(has("EP002", "crates/geom/src/lib.rs", "=="));
    // EP003: the span-less public function in a span-covered file.
    assert!(has("EP003", "crates/sample/src/upsample.rs", "interpolate"));
    // EP004: both the versioned workspace dep and the registry dep.
    assert!(has("EP004", "Cargo.toml", "serde"));
    assert!(has("EP004", "crates/geom/Cargo.toml", "rand"));
    // EP005: the unknown schema version and the unparsable file.
    assert!(has("EP005", "results/BENCH.json", "schema_version"));
    assert!(report
        .violations
        .iter()
        .any(|d| d.rule == "EP005" && d.file == "results/broken.json"));
    // EP000: the deliberately stale waiver.
    assert!(has("EP000", "LINT.toml", "crates/morton/src/lib.rs"));
}

#[test]
fn clean_fixture_is_clean() {
    let report = edgepc_lint::run_workspace(&fixture("clean")).expect("fixture run");
    assert!(
        report.is_clean(),
        "clean fixture reported:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned >= 6, "sources + manifests + results");
}

fn run_lint_all(root: &Path, json_out: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lint_all"))
        .arg("--root")
        .arg(root)
        .arg("--json")
        .arg(json_out)
        .output()
        .expect("spawn lint_all")
}

#[test]
fn lint_all_binary_fails_on_violating_fixture() {
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("violating_lint.json");
    let out = run_lint_all(&fixture("violating"), &json);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["EP000", "EP001", "EP002", "EP003", "EP004", "EP005"] {
        assert!(stdout.contains(rule), "stdout missing {rule}:\n{stdout}");
    }
    // The machine-readable report parses and agrees it is not clean.
    let doc = edgepc_lint::json_lite::parse(&std::fs::read_to_string(&json).expect("lint.json"))
        .expect("valid report json");
    assert_eq!(
        doc.get("clean").and_then(|v| v.as_bool()),
        Some(false),
        "report must say clean=false"
    );
}

#[test]
fn lint_all_binary_passes_on_clean_fixture() {
    let json = Path::new(env!("CARGO_TARGET_TMPDIR")).join("clean_lint.json");
    let out = run_lint_all(&fixture("clean"), &json);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture must exit 0; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let doc = edgepc_lint::json_lite::parse(&std::fs::read_to_string(&json).expect("lint.json"))
        .expect("valid report json");
    assert_eq!(doc.get("clean").and_then(|v| v.as_bool()), Some(true));
}
