//! Fixture source: this path is span-covered (EP003) and the public
//! function below does substantial work without opening a span.

pub fn interpolate(src: &[f32], dst: &mut [f32]) -> usize {
    let mut wrote = 0usize;
    for (i, slot) in dst.iter_mut().enumerate() {
        let a = src[i % src.len()];
        let b = src[(i + 1) % src.len()];
        *slot = 0.5 * (a + b);
        wrote += 1;
    }
    wrote
}
