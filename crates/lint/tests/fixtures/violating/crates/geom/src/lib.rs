//! Fixture source: geom is a hot-path crate, so the unwrap and the
//! panic! below must trip EP001, and the float compare EP002.

pub fn centroid(xs: &[f32]) -> f32 {
    let first = xs.first().unwrap();
    if *first == 0.5 {
        panic!("bad centroid seed");
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_fine() {
        assert!(super::centroid(&[1.0, 3.0]).is_finite());
    }
}
