//! Planted EP007 violations (geom is a deterministic crate): hash-order
//! iteration feeding a returned value, a wall-clock read, and a
//! scheduling-dependent fold inside a par closure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static TOTAL: AtomicU64 = AtomicU64::new(0);

/// EP007: HashMap iteration order leaks into the return value.
pub fn keys_in_hash_order(m: &HashMap<String, u32>) -> Vec<String> {
    m.keys().cloned().collect()
}

/// EP007: wall-clock reads do not belong in deterministic results.
pub fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}

/// EP007: the fold result depends on chunk scheduling.
pub fn racy_total(n: u64) -> u64 {
    edgepc_par::par_for(0..n, |i| {
        TOTAL.fetch_add(i, Ordering::Relaxed);
    });
    TOTAL.load(Ordering::Relaxed)
}
