//! Planted EP008 violations in a fused-executor shape: the designated
//! steady-state step materializes scratch buffers per call instead of
//! reusing the arena the planner sized.

pub fn step_fused(weights: &[f32], acts: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; acts.len()];
    let staged: Vec<f32> = acts.iter().map(|a| a * 2.0).collect();
    for (o, (w, a)) in out.iter_mut().zip(weights.iter().zip(&staged)) {
        *o = w * a;
    }
    out
}

/// Not designated: plan construction is a cold path, so the same
/// allocations draw no diagnostic here.
pub fn plan_cold(rows: usize, cols: usize) -> Vec<f32> {
    vec![0.0f32; rows * cols]
}
