//! Planted EP006 violations: a descending lock acquisition and an
//! undeclared mutex. The fixture LINT.toml ranks `fixture.low` below
//! `fixture.high` and declares a stale site plus a ghost ranking entry.

use std::sync::{Mutex, PoisonError};

pub struct Queue {
    low: Mutex<u32>,
    high: Mutex<u32>,
    count: Mutex<u32>,
}

impl Queue {
    /// EP006: acquires `fixture.low` while holding `fixture.high` — the
    /// declared ranking requires the reverse.
    pub fn descending(&self) -> u32 {
        let h = self.high.lock().unwrap_or_else(PoisonError::into_inner);
        let l = self.low.lock().unwrap_or_else(PoisonError::into_inner);
        *h + *l
    }

    /// EP006: `self.count` has no `[[lock.site]]` declaration.
    pub fn undeclared(&self) -> u32 {
        *self.count.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
