//! Planted EP008 violations: heap allocations inside a function the
//! fixture LINT.toml designates steady-state allocation-free.

pub fn record_hot(name: &str) -> String {
    let key = format!("span.{name}");
    let copy = key.clone();
    copy
}

/// Not designated: the same allocations are fine here.
pub fn render_cold(name: &str) -> String {
    format!("cold.{name}")
}
