//! The sanctioned locking shapes: ascending acquisition through a
//! poison-tolerant wrapper, and an early drop that ends the held region
//! before the next acquisition.

use std::sync::{Mutex, MutexGuard, PoisonError};

pub struct Queue {
    low: Mutex<u32>,
    high: Mutex<u32>,
}

impl Queue {
    /// The poison-tolerant wrapper idiom EP006 classifies as an
    /// acquisition of `fixture.low` at every call site.
    fn lock_low(&self) -> MutexGuard<'_, u32> {
        self.low.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Ascending nesting: `fixture.low` then `fixture.high`.
    pub fn ascending(&self) -> u32 {
        let l = self.lock_low();
        let h = self.high.lock().unwrap_or_else(PoisonError::into_inner);
        *l + *h
    }

    /// Early drop: the low guard is released before the high acquisition,
    /// so no edge exists at all.
    pub fn sequential(&self) -> u32 {
        let l = self.lock_low();
        let low = *l;
        drop(l);
        let h = self.high.lock().unwrap_or_else(PoisonError::into_inner);
        low + *h
    }
}
