//! The sanctioned fused-executor shape: the designated steady-state step
//! works entirely in caller-provided arena slices, so it is allocation
//! free once the plan's buffers exist.

/// Designated hot fn: multiply-accumulate into a preplanned arena slice.
pub fn step_fused(weights: &[f32], acts: &[f32], out: &mut [f32]) -> f32 {
    let mut peak = 0.0f32;
    for (o, (w, a)) in out.iter_mut().zip(weights.iter().zip(acts)) {
        *o = w * a;
        peak = peak.max(*o);
    }
    peak
}
