//! The sanctioned steady-state shapes for a designated hot function:
//! buffers routed through the scratch pool are exempt, and allocation-free
//! arithmetic is trivially fine.

pub struct Recorder {
    scratch: Vec<u32>,
}

impl Recorder {
    /// Designated hot fn: the only allocation-shaped call goes through
    /// the scratch pool, which EP008 exempts.
    pub fn record_hot(&mut self, xs: &[u32]) -> u64 {
        let buf = self.scratch.to_vec();
        let mut total = 0u64;
        for (slot, x) in buf.iter().zip(xs) {
            total += u64::from(slot + x);
        }
        total
    }
}
