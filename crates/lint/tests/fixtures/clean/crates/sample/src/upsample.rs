//! Fixture source: the substantial public function opens a stage span
//! (EP003 satisfied); the small helper sits below the body threshold.

pub fn interpolate(src: &[f32], dst: &mut [f32]) -> usize {
    let _span = edgepc_trace::span("upsample.interp", "upsample");
    let mut wrote = 0usize;
    for (i, slot) in dst.iter_mut().enumerate() {
        let a = src[i % src.len()];
        let b = src[(i + 1) % src.len()];
        *slot = 0.5 * (a + b);
        wrote += 1;
    }
    wrote
}

pub fn midpoint(a: f32, b: f32) -> f32 {
    0.5 * (a + b)
}
