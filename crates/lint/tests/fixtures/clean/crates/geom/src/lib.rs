//! Fixture source: panic-free hot-path code; the unwrap and exact float
//! compare live inside a test module, which EP001/EP002 must skip.

pub fn centroid(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_and_float_eq_are_fine_here() {
        let first = [2.0f32].first().copied().unwrap();
        assert!(first == 2.0);
    }
}
