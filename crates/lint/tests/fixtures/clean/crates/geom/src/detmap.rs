//! The sanctioned determinism shape: hash-map iteration is fine when the
//! result is sorted before it escapes.

use std::collections::HashMap;

pub fn sorted_keys(m: &HashMap<String, u32>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}
