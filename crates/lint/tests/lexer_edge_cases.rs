//! Lexer edge cases that a regex-based scanner gets wrong: raw strings
//! with hash fences, nested block comments, raw identifiers, and the
//! lifetime-vs-char-literal ambiguity.

use edgepc_lint::lexer::{tokenize, TokenKind};

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    tokenize(src)
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

#[test]
fn raw_string_with_hashes_swallows_quotes_and_panics() {
    // The panic! inside the raw string is data, not a macro call.
    let toks = kinds(r####"let s = r##"contains "quotes" and panic!()"##;"####);
    let raw: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::RawStr)
        .collect();
    assert_eq!(raw.len(), 1);
    assert!(raw[0].1.contains("panic!"));
    // No Ident token for `panic` escaped the string.
    assert!(!toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
}

#[test]
fn byte_raw_string_lexes_as_one_token() {
    let toks = kinds(r###"let b = br#"bytes "here""#;"###);
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).count(),
        1
    );
}

#[test]
fn nested_block_comments_terminate_correctly() {
    let toks = kinds("/* outer /* inner */ still comment */ after");
    let idents: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Ident)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(idents, ["after"]);
}

#[test]
fn raw_identifier_is_a_single_ident_token() {
    let toks = kinds("let r#match = 1;");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    // `match` alone must not appear (it is part of the raw ident).
    assert!(!toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Ident && t == "match"));
}

#[test]
fn lifetime_vs_char_literal() {
    let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
        2
    );
}

#[test]
fn unterminated_input_never_panics() {
    // The lexer must be total: truncated constructs end at EOF.
    for src in [
        "let s = \"unterminated",
        "let s = r#\"unterminated",
        "/* unterminated /* nested",
        "let c = '",
        "r#",
    ] {
        let _ = tokenize(src);
    }
}

#[test]
fn float_exponents_and_hex_are_distinguished() {
    let toks = tokenize("let a = 1e10; let b = 0xEF; let c = 2.5E-3;");
    let floats: Vec<_> = toks
        .iter()
        .filter(|t| t.is_float_literal())
        .map(|t| t.text.as_str())
        .collect();
    // 0xEF contains an `E` but is an integer literal.
    assert_eq!(floats, ["1e10", "2.5E-3"]);
}
