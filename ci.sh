#!/bin/sh
# CI gate for the EdgePC workspace. Runs entirely offline:
#   1. static analysis     cargo run -p edgepc-lint --bin lint_all
#   2. formatting          cargo fmt --check
#   3. lints               cargo clippy -D warnings (all targets)
#   4. tier-1              release build + test suite
#
# --no-lint skips step 1 (useful mid-refactor; the full gate still runs
# it, and crates/lint/tests/self_check.rs re-asserts it under cargo test).
#
# Optional performance smoke (see EXPERIMENTS.md, "Benchmarking &
# regression policy"):
#   --perf-smoke    after the gates above, run the statistical benchmark
#                   runner in its fast configuration and diff the fresh
#                   recording against the committed results/BENCH.json
#                   baseline. Warn-only: shared-runner noise makes hard
#                   wall-time gates unreliable in CI.
#   --perf-strict   same, but regressions beyond the noise band fail the
#                   script (exit 1). Use locally on a quiet machine.
#
# Optional serving smoke:
#   --serve-smoke   after the gates above, drive a short bursty load
#                   through the edgepc-serve engine (loadgen --smoke) and
#                   validate the generated serve.json against the EP005
#                   schema pin. Fails on panics, hangs, or schema drift.
#
# Benchmark regression gate:
#   --bench-gate    run bench_all in CI smoke mode (reduced repeats) and
#                   bench_compare the fresh recording against the
#                   committed results/BENCH.json, failing on any
#                   regression beyond the noise gate. Unlike --perf-smoke
#                   this is strict by design: it is the check that keeps
#                   the edgepc-par kernel rewrites honest. Smoke mode has
#                   fewer repeats than the committed paper-mode baseline,
#                   so the band is widened to 15% — wide enough to absorb
#                   run-to-run drift, tight enough to catch a kernel that
#                   actually got slower.
set -eu

PERF_MODE=""
SERVE_SMOKE=0
BENCH_GATE=0
RUN_LINT=1
for arg in "$@"; do
    case "$arg" in
        --perf-smoke)  PERF_MODE="warn" ;;
        --perf-strict) PERF_MODE="strict" ;;
        --serve-smoke) SERVE_SMOKE=1 ;;
        --bench-gate)  BENCH_GATE=1 ;;
        --no-lint)     RUN_LINT=0 ;;
        *)
            echo "usage: ci.sh [--no-lint] [--perf-smoke | --perf-strict] [--serve-smoke] [--bench-gate]" >&2
            exit 2
            ;;
    esac
done

if [ "$RUN_LINT" = 1 ]; then
    echo "==> lint_all: workspace static analysis (EP rules, see DESIGN.md)"
    cargo run -q -p edgepc-lint --bin lint_all
else
    echo "==> lint_all: skipped (--no-lint)"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

if [ -n "$PERF_MODE" ]; then
    echo "==> perf smoke: bench_all --smoke vs committed results/BENCH.json"
    cargo run --release -q -p edgepc-bench --bin bench_all -- \
        --smoke --out target/BENCH.smoke.json
    if [ "$PERF_MODE" = "warn" ]; then
        cargo run --release -q -p edgepc-bench --bin bench_compare -- \
            results/BENCH.json target/BENCH.smoke.json --warn-only
    else
        cargo run --release -q -p edgepc-bench --bin bench_compare -- \
            results/BENCH.json target/BENCH.smoke.json
    fi
fi

if [ "$BENCH_GATE" = 1 ]; then
    echo "==> bench gate: bench_all --smoke vs committed results/BENCH.json (strict)"
    cargo run --release -q -p edgepc-bench --bin bench_all -- \
        --smoke --out target/BENCH.gate.json
    cargo run --release -q -p edgepc-bench --bin bench_compare -- \
        results/BENCH.json target/BENCH.gate.json --threshold-pct 15
fi

if [ "$SERVE_SMOKE" = 1 ]; then
    echo "==> serve smoke: loadgen --smoke + EP005 schema check"
    cargo run --release -q -p edgepc-serve --bin loadgen -- \
        --smoke --out target/serve.json
    cargo run -q -p edgepc-lint --bin lint_all -- --results target/serve.json
fi

echo "CI OK"
