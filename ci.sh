#!/bin/sh
# CI gate for the EdgePC workspace. Runs entirely offline:
#   1. formatting          cargo fmt --check
#   2. lints               cargo clippy -D warnings (all targets)
#   3. tier-1              release build + test suite
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

echo "CI OK"
