#!/bin/sh
# CI gate for the EdgePC workspace. Runs entirely offline:
#   1. static analysis     cargo run -p edgepc-lint --bin lint_all
#   2. formatting          cargo fmt --check
#   3. lints               cargo clippy -D warnings (all targets)
#   4. tier-1              release build + test suite
#
# --no-lint skips step 1 (useful mid-refactor; the full gate still runs
# it, and crates/lint/tests/self_check.rs re-asserts it under cargo test).
#
# Optional performance smoke (see EXPERIMENTS.md, "Benchmarking &
# regression policy"):
#   --perf-smoke    after the gates above, run the statistical benchmark
#                   runner in its fast configuration and diff the fresh
#                   recording against the committed results/BENCH.json
#                   baseline. Warn-only: shared-runner noise makes hard
#                   wall-time gates unreliable in CI.
#   --perf-strict   same, but regressions beyond the noise band fail the
#                   script (exit 1). Use locally on a quiet machine.
#
# Optional serving smoke:
#   --serve-smoke   after the gates above, drive a short bursty load
#                   through the edgepc-serve engine (loadgen --smoke) and
#                   validate the generated serve.json against the EP005
#                   schema pin. Fails on panics, hangs, or schema drift.
#
# Optional observability smoke:
#   --obs-smoke     run loadgen --smoke with the live telemetry endpoint
#                   enabled, query all three snapshot verbs (metrics /
#                   registry / flightrec) through obsctl WHILE the load
#                   runs, release the run with the quit verb, and EP005
#                   schema-check the generated serve.json and the saved
#                   flightrec.json. Fails if the endpoint is unreachable,
#                   any snapshot is malformed, or a schema drifted.
#
# Optional network smoke:
#   --net-smoke     stand up the sharded TCP front end (2 engine shards
#                   behind the router on an ephemeral loopback port),
#                   drive it with netgen --smoke over real sockets, and
#                   validate the generated net.json against the EP005
#                   schema pin. Fails on panics, hangs, refused
#                   connections, or schema drift.
#
# Optional IR smoke:
#   --ir-smoke      compile every model forward path through the edgepc-ir
#                   graph scheduler, run the compiled plans against the
#                   eager oracles, and fail unless the logits are
#                   bit-identical; then EP005 schema-check the generated
#                   ir_smoke.json. This is the cheap end-to-end proof that
#                   fusion + arena scheduling changed nothing numerically.
#
# Benchmark regression gate:
#   --bench-gate    run bench_all in CI smoke mode (reduced repeats) and
#                   bench_compare the fresh recording against the
#                   committed results/BENCH.json, failing on any
#                   regression beyond the noise gate. Unlike --perf-smoke
#                   this is strict by design: it is the check that keeps
#                   the edgepc-par kernel rewrites honest. Smoke mode has
#                   fewer repeats than the committed paper-mode baseline,
#                   so the band is widened to 15% — wide enough to absorb
#                   run-to-run drift, tight enough to catch a kernel that
#                   actually got slower.
set -eu

PERF_MODE=""
SERVE_SMOKE=0
OBS_SMOKE=0
NET_SMOKE=0
IR_SMOKE=0
BENCH_GATE=0
RUN_LINT=1
for arg in "$@"; do
    case "$arg" in
        --perf-smoke)  PERF_MODE="warn" ;;
        --perf-strict) PERF_MODE="strict" ;;
        --serve-smoke) SERVE_SMOKE=1 ;;
        --obs-smoke)   OBS_SMOKE=1 ;;
        --net-smoke)   NET_SMOKE=1 ;;
        --ir-smoke)    IR_SMOKE=1 ;;
        --bench-gate)  BENCH_GATE=1 ;;
        --no-lint)     RUN_LINT=0 ;;
        *)
            echo "usage: ci.sh [--no-lint] [--perf-smoke | --perf-strict] [--serve-smoke] [--obs-smoke] [--net-smoke] [--ir-smoke] [--bench-gate]" >&2
            exit 2
            ;;
    esac
done

if [ "$RUN_LINT" = 1 ]; then
    echo "==> lint_all: workspace static analysis (EP rules, see DESIGN.md)"
    LINT_T0=$(date +%s)
    cargo run -q -p edgepc-lint --bin lint_all -- --json target/lint.json
    LINT_T1=$(date +%s)
    echo "==> lint_all: gate took $((LINT_T1 - LINT_T0))s wall (per-rule breakdown in the summary above)"
    # The report the gate just emitted must itself satisfy the EP005
    # schema pin — lint.json is a pinned artifact like BENCH/serve.json.
    cargo run -q -p edgepc-lint --bin lint_all -- --results target/lint.json
else
    echo "==> lint_all: skipped (--no-lint)"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

if [ -n "$PERF_MODE" ]; then
    echo "==> perf smoke: bench_all --smoke vs committed results/BENCH.json"
    cargo run --release -q -p edgepc-bench --bin bench_all -- \
        --smoke --out target/BENCH.smoke.json
    if [ "$PERF_MODE" = "warn" ]; then
        cargo run --release -q -p edgepc-bench --bin bench_compare -- \
            results/BENCH.json target/BENCH.smoke.json --warn-only
    else
        cargo run --release -q -p edgepc-bench --bin bench_compare -- \
            results/BENCH.json target/BENCH.smoke.json
    fi
fi

if [ "$BENCH_GATE" = 1 ]; then
    echo "==> bench gate: bench_all --smoke vs committed results/BENCH.json (strict)"
    cargo run --release -q -p edgepc-bench --bin bench_all -- \
        --smoke --out target/BENCH.gate.json
    cargo run --release -q -p edgepc-bench --bin bench_compare -- \
        results/BENCH.json target/BENCH.gate.json --threshold-pct 15
fi

if [ "$SERVE_SMOKE" = 1 ]; then
    echo "==> serve smoke: loadgen --smoke + EP005 schema check"
    cargo run --release -q -p edgepc-serve --bin loadgen -- \
        --smoke --out target/serve.json
    cargo run -q -p edgepc-lint --bin lint_all -- --results target/serve.json
fi

if [ "$OBS_SMOKE" = 1 ]; then
    echo "==> obs smoke: loadgen under live telemetry endpoint + obsctl check"
    rm -rf target/obs
    mkdir -p target/obs
    # Prebuild both binaries so the background loadgen and the obsctl
    # queries do not fight over the cargo build lock mid-smoke.
    cargo build --release -q -p edgepc-serve --bin loadgen --bin obsctl
    cargo run --release -q -p edgepc-serve --bin loadgen -- \
        --smoke --requests 384 --rate 250 \
        --out target/obs/serve.json \
        --telemetry 127.0.0.1:0 \
        --telemetry-addr-file target/obs/endpoint.addr \
        --hold-ms 30000 \
        --flightrec target/obs/flightrec-trigger.json &
    LOADGEN_PID=$!
    ADDR=""
    tries=0
    while [ "$tries" -lt 150 ]; do
        if [ -s target/obs/endpoint.addr ]; then
            ADDR=$(cat target/obs/endpoint.addr)
            break
        fi
        tries=$((tries + 1))
        sleep 0.2
    done
    if [ -z "$ADDR" ]; then
        echo "obs smoke: telemetry endpoint never published an address" >&2
        kill "$LOADGEN_PID" 2>/dev/null || true
        exit 1
    fi
    # Query all three snapshot verbs while the load is in flight; check
    # exits non-zero unless every snapshot is well-formed.
    cargo run --release -q -p edgepc-serve --bin obsctl -- "$ADDR" check --out target/obs
    # Release the --hold-ms window and let loadgen finish writing serve.json.
    cargo run --release -q -p edgepc-serve --bin obsctl -- "$ADDR" quit >/dev/null
    wait "$LOADGEN_PID"
    cargo run -q -p edgepc-lint --bin lint_all -- --results \
        target/obs/serve.json target/obs/flightrec.json
fi

if [ "$IR_SMOKE" = 1 ]; then
    echo "==> ir smoke: compiled plans vs eager oracles + EP005 schema check"
    cargo run --release -q -p edgepc-bench --bin ir_smoke -- \
        --out target/ir_smoke.json
    cargo run -q -p edgepc-lint --bin lint_all -- --results target/ir_smoke.json
fi

if [ "$NET_SMOKE" = 1 ]; then
    echo "==> net smoke: netgen --smoke over loopback sockets + EP005 schema check"
    # Self-hosts 2 engine shards behind the router on an ephemeral port
    # and drives them over real TCP connections.
    cargo run --release -q -p edgepc-net --bin netgen -- \
        --smoke --out target/net.json
    cargo run -q -p edgepc-lint --bin lint_all -- --results target/net.json
fi

echo "CI OK"
