//! Cross-crate integration: the retraining story (paper Sec. 5.3) on every
//! task family, at unit-test scale.

use edgepc::prelude::*;
use edgepc_models::trainer::{train_dgcnn_classifier, train_dgcnn_seg, train_pointnetpp_seg};

#[test]
fn dgcnn_classifier_trains_with_edgepc_graphs() {
    let ds = modelnet_like(&DatasetConfig {
        classes: 2,
        train_per_class: 4,
        test_per_class: 2,
        points_per_cloud: Some(128),
        seed: 21,
    });
    let mut model =
        DgcnnClassifier::new(&DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 24)), 2);
    let rep = train_dgcnn_classifier(&mut model, &ds, 10, 0.002);
    assert!(
        rep.epoch_losses.last().unwrap() < rep.epoch_losses.first().unwrap(),
        "loss should fall: {:?}",
        rep.epoch_losses
    );
    assert!(rep.test_accuracy >= 0.5, "accuracy {}", rep.test_accuracy);
}

#[test]
fn dgcnn_segmenter_trains_on_part_labels() {
    let ds = shapenet_like(&DatasetConfig {
        classes: 2,
        train_per_class: 3,
        test_per_class: 1,
        points_per_cloud: Some(128),
        seed: 22,
    });
    let mut model = DgcnnSeg::new(
        &DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 24)),
        ds.num_classes,
    );
    let rep = train_dgcnn_seg(&mut model, &ds, 6, 0.01);
    // Parts are 50/25/25; beating the majority class shows real learning.
    assert!(rep.test_accuracy > 0.55, "accuracy {}", rep.test_accuracy);
}

#[test]
fn pointnetpp_trains_under_both_strategy_sets() {
    let ds = s3dis_like(&DatasetConfig {
        classes: 1,
        train_per_class: 3,
        test_per_class: 2,
        points_per_cloud: Some(256),
        seed: 23,
    });
    for (label, strategy) in [
        ("baseline", PipelineStrategy::baseline_exact()),
        ("edgepc", PipelineStrategy::edgepc_pointnetpp(2, 24)),
    ] {
        let mut model = PointNetPpSeg::new(&PointNetPpConfig::tiny(6, strategy), ds.num_classes);
        let rep = train_pointnetpp_seg(&mut model, &ds, 6, 0.005);
        assert!(
            rep.epoch_losses.last().unwrap() < rep.epoch_losses.first().unwrap(),
            "{label}: loss should fall: {:?}",
            rep.epoch_losses
        );
        assert!(
            rep.test_accuracy > 1.0 / 6.0,
            "{label}: accuracy {} below chance",
            rep.test_accuracy
        );
    }
}

#[test]
fn retraining_closes_the_transplant_gap() {
    // The Sec. 5.3 story in one test: approximation without retraining
    // loses accuracy relative to the retrained EdgePC model.
    let ds = modelnet_like(&DatasetConfig {
        classes: 3,
        train_per_class: 6,
        test_per_class: 3,
        points_per_cloud: Some(128),
        seed: 24,
    });
    let mut baseline =
        DgcnnClassifier::new(&DgcnnConfig::tiny(PipelineStrategy::baseline_dgcnn(3)), 3);
    let base_rep = train_dgcnn_classifier(&mut baseline, &ds, 16, 0.002);

    // Transplant baseline weights into an approximate-graph model.
    let mut stash: Vec<Vec<f32>> = Vec::new();
    baseline.visit_params(&mut |p, _| stash.push(p.to_vec()));
    let mut transplanted =
        DgcnnClassifier::new(&DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 16)), 3);
    let mut it = stash.into_iter();
    transplanted.visit_params(&mut |p, _| p.copy_from_slice(&it.next().unwrap()));
    let transplant_acc = edgepc_models::trainer::eval_dgcnn_classifier(&mut transplanted, &ds);

    // Retrained EdgePC model.
    let mut retrained =
        DgcnnClassifier::new(&DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 16)), 3);
    let edge_rep = train_dgcnn_classifier(&mut retrained, &ds, 16, 0.002);

    assert!(
        edge_rep.test_accuracy >= transplant_acc,
        "retrained {} must not trail transplanted {}",
        edge_rep.test_accuracy,
        transplant_acc
    );
    assert!(
        edge_rep.test_accuracy >= base_rep.test_accuracy - 0.25,
        "retrained {} too far below baseline {}",
        edge_rep.test_accuracy,
        base_rep.test_accuracy
    );
}
