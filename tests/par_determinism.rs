//! The `edgepc-par` determinism contract, end to end: full model
//! forwards — radix-sorted structurization, parallel neighbor search,
//! blocked matmuls, parallel grouping — must be bit-identical for every
//! thread budget, because chunk boundaries are fixed and results
//! recombine in chunk order regardless of worker count.

use edgepc::prelude::*;

fn bunny_cloud() -> PointCloud {
    // Large enough to drive the radix sort (>= 1024 points) and the
    // blocked matmul path through the tiny models' MLPs.
    edgepc_data::bunny_with_points(2048, 9)
}

/// Runs `f` under each thread budget and asserts the outputs match the
/// single-thread run bit for bit.
fn assert_thread_count_invariant<R: PartialEq + std::fmt::Debug>(
    label: &str,
    mut f: impl FnMut() -> R,
) {
    let solo = edgepc_par::with_threads(1, &mut f);
    for t in [2usize, 8] {
        let got = edgepc_par::with_threads(t, &mut f);
        assert_eq!(got, solo, "{label} diverged between 1 and {t} threads");
    }
}

#[test]
fn pointnetpp_forward_is_thread_count_invariant() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    assert_thread_count_invariant("pointnetpp logits", || {
        // A fresh model per run: same seed, so replicas are identical and
        // any divergence must come from the parallel kernels.
        let mut m = PointNetPpSeg::new(&config, 3);
        let (logits, _) = m.forward(&cloud);
        logits.as_slice().to_vec()
    });
}

#[test]
fn pointnetpp_op_counts_are_thread_count_invariant() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    assert_thread_count_invariant("pointnetpp stage ops", || {
        let mut m = PointNetPpSeg::new(&config, 3);
        let (_, records) = m.forward(&cloud);
        records
            .into_iter()
            .map(|r| (r.name, r.ops))
            .collect::<Vec<_>>()
    });
}

#[test]
fn dgcnn_forward_is_thread_count_invariant() {
    let cloud = bunny_cloud();
    let config = DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 24));
    assert_thread_count_invariant("dgcnn logits", || {
        let mut m = DgcnnClassifier::new(&config, 3);
        let (logits, _) = m.forward(&cloud);
        logits.as_slice().to_vec()
    });
}

#[test]
fn structurization_is_thread_count_invariant() {
    let cloud = bunny_cloud();
    assert_thread_count_invariant("structurization", || {
        let s = Structurizer::paper_default().structurize(&cloud);
        (s.permutation().to_vec(), s.codes().to_vec())
    });
}
