//! The `edgepc-par` determinism contract, end to end: full model
//! forwards — radix-sorted structurization, parallel neighbor search,
//! blocked matmuls, parallel grouping — must be bit-identical for every
//! thread budget, because chunk boundaries are fixed and results
//! recombine in chunk order regardless of worker count.

use edgepc::prelude::*;

fn bunny_cloud() -> PointCloud {
    // Large enough to drive the radix sort (>= 1024 points) and the
    // blocked matmul path through the tiny models' MLPs.
    edgepc_data::bunny_with_points(2048, 9)
}

/// Runs `f` under each thread budget and asserts the outputs match the
/// single-thread run bit for bit.
fn assert_thread_count_invariant<R: PartialEq + std::fmt::Debug>(
    label: &str,
    mut f: impl FnMut() -> R,
) {
    let solo = edgepc_par::with_threads(1, &mut f);
    for t in [2usize, 8] {
        let got = edgepc_par::with_threads(t, &mut f);
        assert_eq!(got, solo, "{label} diverged between 1 and {t} threads");
    }
}

#[test]
fn pointnetpp_forward_is_thread_count_invariant() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    assert_thread_count_invariant("pointnetpp logits", || {
        // A fresh model per run: same seed, so replicas are identical and
        // any divergence must come from the parallel kernels.
        let mut m = PointNetPpSeg::new(&config, 3);
        let (logits, _) = m.forward(&cloud);
        logits.as_slice().to_vec()
    });
}

#[test]
fn pointnetpp_op_counts_are_thread_count_invariant() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    assert_thread_count_invariant("pointnetpp stage ops", || {
        let mut m = PointNetPpSeg::new(&config, 3);
        let (_, records) = m.forward(&cloud);
        records
            .into_iter()
            .map(|r| (r.name, r.ops))
            .collect::<Vec<_>>()
    });
}

#[test]
fn dgcnn_forward_is_thread_count_invariant() {
    let cloud = bunny_cloud();
    let config = DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 24));
    assert_thread_count_invariant("dgcnn logits", || {
        let mut m = DgcnnClassifier::new(&config, 3);
        let (logits, _) = m.forward(&cloud);
        logits.as_slice().to_vec()
    });
}

#[test]
fn compiled_pointnetpp_matches_eager_at_every_thread_budget() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    // Eager oracle and compiled plan built once; every budget must agree
    // with the single-thread eager run bit for bit.
    let mut eager_model = PointNetPpSeg::new(&config, 3);
    let eager = edgepc_par::with_threads(1, || eager_model.forward(&cloud).0);
    let model = PointNetPpSeg::new(&config, 3);
    let compiled = edgepc_models::CompiledPointNetPp::compile(&model, cloud.len());
    for t in [1usize, 2, 8] {
        let logits = edgepc_par::with_threads(t, || {
            let mut state = edgepc_models::ExecState::new();
            compiled.run(&cloud, &mut state).0
        });
        assert_eq!(
            logits.as_slice(),
            eager.as_slice(),
            "compiled pointnetpp diverged from eager at {t} threads"
        );
    }
}

#[test]
fn compiled_dgcnn_matches_eager_at_every_thread_budget() {
    let cloud = bunny_cloud();
    let config = DgcnnConfig::tiny(PipelineStrategy::edgepc_dgcnn(3, 24));
    let mut eager_model = DgcnnClassifier::new(&config, 3);
    let eager = edgepc_par::with_threads(1, || eager_model.forward(&cloud).0);
    let model = DgcnnClassifier::new(&config, 3);
    let compiled = edgepc_models::CompiledDgcnn::classifier(&model, cloud.len());
    for t in [1usize, 2, 8] {
        let logits = edgepc_par::with_threads(t, || {
            let mut state = edgepc_models::ExecState::new();
            compiled.run(&cloud, &mut state).0
        });
        assert_eq!(
            logits.as_slice(),
            eager.as_slice(),
            "compiled dgcnn diverged from eager at {t} threads"
        );
    }
}

#[test]
fn compiled_executor_is_allocation_free_at_steady_state() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    let model = PointNetPpSeg::new(&config, 3);
    // Planning twice must give byte-identical arena layouts (the plan is a
    // pure function of the graph), and a warm executor must hold its arena
    // capacity across many steady-state runs — the zero-allocation
    // contract the EP008 lint scopes pin at the source level.
    let a = edgepc_models::CompiledPointNetPp::compile(&model, cloud.len());
    let b = edgepc_models::CompiledPointNetPp::compile(&model, cloud.len());
    let mut state_a = edgepc_models::ExecState::new();
    let mut state_b = edgepc_models::ExecState::new();
    let _ = a.run(&cloud, &mut state_a);
    let _ = b.run(&cloud, &mut state_b);
    assert_eq!(
        state_a.arena_capacity(),
        state_b.arena_capacity(),
        "replanning must reproduce the same arena layout"
    );
    let warm = state_a.arena_capacity();
    assert!(warm > 0, "plans use the arena");
    for i in 0..100 {
        let _ = a.run(&cloud, &mut state_a);
        assert_eq!(
            state_a.arena_capacity(),
            warm,
            "arena reallocated on steady-state run {i}"
        );
    }
}

#[test]
fn structurization_is_thread_count_invariant() {
    let cloud = bunny_cloud();
    assert_thread_count_invariant("structurization", || {
        let s = Structurizer::paper_default().structurize(&cloud);
        (s.permutation().to_vec(), s.codes().to_vec())
    });
}
