//! Reproducibility: everything downstream of a seed is bit-identical,
//! which the experiment harnesses rely on.

use edgepc::prelude::*;
use edgepc::{compare, EdgePcConfig, Workload};

#[test]
fn datasets_are_deterministic() {
    let cfg = DatasetConfig::tiny(3).with_seed(77);
    let a = modelnet_like(&cfg);
    let b = modelnet_like(&cfg);
    for (x, y) in a.train.iter().zip(&b.train) {
        assert_eq!(x.cloud.points(), y.cloud.points());
        assert_eq!(x.class, y.class);
    }
}

#[test]
fn structurization_is_deterministic() {
    let cloud = bunny_cloud();
    let a = Structurizer::paper_default().structurize(&cloud);
    let b = Structurizer::paper_default().structurize(&cloud);
    assert_eq!(a.permutation(), b.permutation());
    assert_eq!(a.codes(), b.codes());
}

#[test]
fn samplers_are_deterministic() {
    let cloud = bunny_cloud();
    assert_eq!(
        FarthestPointSampler::new().sample(&cloud, 64).indices,
        FarthestPointSampler::new().sample(&cloud, 64).indices
    );
    assert_eq!(
        MortonSampler::paper_default().sample(&cloud, 64).indices,
        MortonSampler::paper_default().sample(&cloud, 64).indices
    );
    assert_eq!(
        RandomSampler::with_seed(5).sample(&cloud, 64).indices,
        RandomSampler::with_seed(5).sample(&cloud, 64).indices
    );
}

#[test]
fn model_forward_is_deterministic() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    let mut m1 = PointNetPpSeg::new(&config, 3);
    let mut m2 = PointNetPpSeg::new(&config, 3);
    let (l1, r1) = m1.forward(&cloud);
    let (l2, r2) = m2.forward(&cloud);
    assert_eq!(l1.as_slice(), l2.as_slice());
    assert_eq!(r1.len(), r2.len());
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.ops, b.ops, "{}", a.name);
    }
}

#[test]
fn workload_comparisons_are_deterministic() {
    let cfg = EdgePcConfig::paper_default();
    let a = compare(Workload::W3, &cfg, 512);
    let b = compare(Workload::W3, &cfg, 512);
    assert_eq!(a.sn_stage_speedup, b.sn_stage_speedup);
    assert_eq!(a.e2e_speedup_snf, b.e2e_speedup_snf);
    assert_eq!(a.energy_saving_sn, b.energy_saving_sn);
}

fn bunny_cloud() -> PointCloud {
    edgepc_data::bunny_with_points(512, 9)
}
