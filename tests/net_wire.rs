//! Workspace-level network invariants: determinism must survive the
//! wire, the protocol must stay total on hostile bytes, and trace ids
//! must connect a response frame back to the server-side span timeline.

// Shared helpers below are plain fns, so the allow-*-in-tests clippy config
// does not reach them; this file is test-only code throughout.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use edgepc_data::bunny_with_points;
use edgepc_net::proto::{
    self, decode_body, encode_request, ErrCode, Frame, FrameRead, RequestFrame, DEFAULT_MAX_FRAME,
};
use edgepc_net::{NetConfig, NetServer, RoutePolicy, Router};
use edgepc_serve::{EngineConfig, ModelSpec};
use edgepc_trace::Registry;

fn start_server(shards: usize, workers: usize) -> (NetServer, Arc<Router>) {
    let cfgs = (0..shards)
        .map(|_| {
            let mut c = EngineConfig::new(workers);
            c.queue_capacity = 64;
            c
        })
        .collect();
    let router = Arc::new(Router::new(
        cfgs,
        vec![ModelSpec::pointnetpp_tiny(4)],
        RoutePolicy::LeastLoaded,
        None, // hedging disabled: determinism checks want one submission
    ));
    let server = NetServer::start(Arc::clone(&router), "127.0.0.1:0", NetConfig::default())
        .expect("bind ephemeral port");
    (server, router)
}

fn connect(server: &NetServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let _ = stream.set_nodelay(true);
    stream
}

/// The seeded request set both sides of the determinism test send.
fn request_set() -> Vec<RequestFrame> {
    (0..12u64)
        .map(|i| RequestFrame {
            seq: i,
            trace_id: 0,
            model: 0,
            tenant: i % 5,
            deadline_us: 0,
            points: bunny_with_points(96, 0xde70 + i).points().to_vec(),
        })
        .collect()
}

/// Pipelines every request down one connection and returns the decoded
/// responses keyed by seq.
fn drive(stream: &mut TcpStream, requests: &[RequestFrame]) -> HashMap<u64, Frame> {
    for req in requests {
        stream
            .write_all(&encode_request(req))
            .expect("write request");
    }
    let mut responses = HashMap::new();
    for _ in requests {
        let body = match proto::read_frame(stream, DEFAULT_MAX_FRAME).expect("read frame") {
            FrameRead::Body(b) => b,
            other => panic!("expected a response body, got {other:?}"),
        };
        let frame = decode_body(&body).expect("decode response");
        let seq = match &frame {
            Frame::Ok(ok) => ok.seq,
            Frame::Err(err) => err.seq,
            Frame::Request(_) => panic!("server must not send request frames"),
        };
        responses.insert(seq, frame);
    }
    responses
}

fn logits_by_seq(responses: HashMap<u64, Frame>) -> HashMap<u64, Vec<f32>> {
    responses
        .into_iter()
        .map(|(seq, frame)| match frame {
            Frame::Ok(ok) => (seq, ok.logits),
            other => panic!("request {seq} failed: {other:?}"),
        })
        .collect()
}

/// The tentpole invariant: the same seeded request set produces
/// bit-identical logits through one shard and through three, over real
/// sockets — shard count and placement are invisible in the payload.
#[test]
fn determinism_survives_the_wire() {
    let requests = request_set();

    let (server1, router1) = start_server(1, 2);
    let mut conn = connect(&server1);
    let single = logits_by_seq(drive(&mut conn, &requests));
    drop(conn);
    server1.stop();
    router1.shutdown();

    let (server3, router3) = start_server(3, 1);
    let mut conn = connect(&server3);
    let sharded = logits_by_seq(drive(&mut conn, &requests));
    drop(conn);
    server3.stop();
    router3.shutdown();

    assert_eq!(single.len(), requests.len());
    assert_eq!(sharded.len(), requests.len());
    for (seq, logits) in &single {
        let other = sharded.get(seq).expect("same seq answered");
        assert_eq!(
            logits.len(),
            other.len(),
            "request {seq}: logit shapes differ"
        );
        for (i, (a, b)) in logits.iter().zip(other).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "request {seq} logit {i}: {a} (1 shard) vs {b} (3 shards)"
            );
        }
    }
}

/// Pipelined requests on one connection all come back, in request order
/// (the response pipeline is FIFO per connection).
#[test]
fn pipelined_requests_all_resolve_in_order() {
    let (server, router) = start_server(2, 1);
    let mut conn = connect(&server);
    let requests = request_set();
    for req in &requests {
        conn.write_all(&encode_request(req)).expect("write");
    }
    for req in &requests {
        let body = match proto::read_frame(&mut conn, DEFAULT_MAX_FRAME).expect("read") {
            FrameRead::Body(b) => b,
            other => panic!("expected body, got {other:?}"),
        };
        match decode_body(&body).expect("decode") {
            Frame::Ok(ok) => assert_eq!(ok.seq, req.seq, "FIFO per connection"),
            other => panic!("request {} failed: {other:?}", req.seq),
        }
    }
    drop(conn);
    server.stop();
    router.shutdown();
}

/// The trace id in an `Ok` frame is real: the server-side registry holds
/// a `net.settle` span for exactly that id, so a flight-recorder
/// timeline can be joined to the wire response.
#[test]
fn response_trace_ids_connect_to_server_spans() {
    let registry = Arc::new(Registry::new());
    let (server, router) =
        edgepc_trace::with_registry(Arc::clone(&registry), || start_server(2, 1));
    let mut conn = connect(&server);
    let responses = drive(&mut conn, &request_set());
    for (seq, frame) in responses {
        let Frame::Ok(ok) = frame else {
            panic!("request {seq} failed: not ok");
        };
        assert_ne!(ok.trace_id, 0, "server assigns a real trace id");
        let spans = registry.spans_for_trace(ok.trace_id);
        assert!(
            spans.iter().any(|s| s.name == "net.settle"),
            "request {seq}: trace {} has no net.settle span",
            ok.trace_id
        );
    }
    drop(conn);
    server.stop();
    router.shutdown();
}

// --- protocol hardening: every hostile input answers typed or drops
// --- cleanly, and the server keeps serving afterwards.

fn expect_err(stream: &mut TcpStream, code: ErrCode) {
    let body = match proto::read_frame(stream, DEFAULT_MAX_FRAME).expect("read err frame") {
        FrameRead::Body(b) => b,
        other => panic!("expected error body, got {other:?}"),
    };
    match decode_body(&body).expect("decode err") {
        Frame::Err(err) => assert_eq!(err.code, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

/// After `abuse` ran against its own connection, a fresh connection must
/// still complete a request — hostile clients cannot wedge the server.
fn still_serving(server: &NetServer) {
    let mut conn = connect(server);
    let req = RequestFrame {
        seq: 99,
        trace_id: 0,
        model: 0,
        tenant: 0,
        deadline_us: 0,
        points: bunny_with_points(96, 7).points().to_vec(),
    };
    let responses = drive(&mut conn, std::slice::from_ref(&req));
    assert!(matches!(responses.get(&99), Some(Frame::Ok(_))));
}

#[test]
fn truncated_length_prefix_drops_cleanly() {
    let (server, router) = start_server(1, 1);
    {
        let mut conn = connect(&server);
        conn.write_all(&[0x10, 0x00]).expect("partial prefix");
        // Disconnect mid-prefix; the server must just drop the conn.
        drop(conn);
    }
    still_serving(&server);
    server.stop();
    router.shutdown();
}

#[test]
fn oversize_frame_answers_malformed_and_closes() {
    let (server, router) = start_server(1, 1);
    {
        let mut conn = connect(&server);
        let huge = (DEFAULT_MAX_FRAME + 1).to_le_bytes();
        conn.write_all(&huge).expect("oversize prefix");
        expect_err(&mut conn, ErrCode::Malformed);
        // The connection is closed after the error frame.
        match proto::read_frame(&mut conn, DEFAULT_MAX_FRAME).expect("post-error read") {
            FrameRead::Eof => {}
            other => panic!("expected EOF after malformed, got {other:?}"),
        }
    }
    still_serving(&server);
    server.stop();
    router.shutdown();
}

#[test]
fn garbage_magic_and_version_answer_malformed() {
    let (server, router) = start_server(1, 1);
    // Garbage magic.
    {
        let mut conn = connect(&server);
        let mut body = vec![0u8; 32];
        body[..4].copy_from_slice(b"JUNK");
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        conn.write_all(&frame).expect("garbage frame");
        expect_err(&mut conn, ErrCode::Malformed);
    }
    // Right magic, wrong version.
    {
        let mut conn = connect(&server);
        let good = encode_request(&request_set()[0]);
        let mut bad = good.clone();
        bad[8] = proto::VERSION + 1; // version byte: prefix(4) + magic(4)
        conn.write_all(&bad).expect("bad version frame");
        expect_err(&mut conn, ErrCode::Malformed);
    }
    still_serving(&server);
    server.stop();
    router.shutdown();
}

#[test]
fn zero_point_payload_answers_typed_error() {
    let (server, router) = start_server(1, 1);
    {
        let mut conn = connect(&server);
        let req = RequestFrame {
            seq: 3,
            trace_id: 0,
            model: 0,
            tenant: 0,
            deadline_us: 0,
            points: Vec::new(),
        };
        conn.write_all(&encode_request(&req)).expect("zero points");
        // Decodes fine (zero points is a valid frame) but fails the
        // model's point floor with a typed error echoing the seq.
        let body = match proto::read_frame(&mut conn, DEFAULT_MAX_FRAME).expect("read") {
            FrameRead::Body(b) => b,
            other => panic!("expected body, got {other:?}"),
        };
        match decode_body(&body).expect("decode") {
            Frame::Err(err) => {
                assert_eq!(err.code, ErrCode::TooFewPoints);
                assert_eq!(err.seq, 3);
                assert_eq!(err.a, 0);
            }
            other => panic!("expected TooFewPoints, got {other:?}"),
        }
    }
    still_serving(&server);
    server.stop();
    router.shutdown();
}

#[test]
fn unknown_model_answers_typed_error() {
    let (server, router) = start_server(1, 1);
    {
        let mut conn = connect(&server);
        let mut req = request_set()[0].clone();
        req.model = 42;
        conn.write_all(&encode_request(&req)).expect("write");
        let body = match proto::read_frame(&mut conn, DEFAULT_MAX_FRAME).expect("read") {
            FrameRead::Body(b) => b,
            other => panic!("expected body, got {other:?}"),
        };
        match decode_body(&body).expect("decode") {
            Frame::Err(err) => {
                assert_eq!(err.code, ErrCode::UnknownModel);
                assert_eq!(err.a, 42);
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }
    still_serving(&server);
    server.stop();
    router.shutdown();
}

#[test]
fn mid_request_disconnect_drops_cleanly() {
    let (server, router) = start_server(1, 1);
    {
        let mut conn = connect(&server);
        let frame = encode_request(&request_set()[0]);
        // Send the prefix and half the body, then vanish.
        conn.write_all(&frame[..frame.len() / 2])
            .expect("half frame");
        drop(conn);
    }
    still_serving(&server);
    server.stop();
    router.shutdown();
}
