//! Chaos tests for the network tier: a slow shard, a killed shard, and a
//! queue-full storm. The invariant under every fault is *graceful
//! degradation* — hedges win over stalls, the router sheds or fails over
//! instead of hanging, and the net.json report records the degraded run
//! honestly.

use std::sync::Arc;
use std::time::{Duration, Instant};

use edgepc_data::bunny_with_points;
use edgepc_net::metrics;
use edgepc_net::{net_json, run_row, HedgeConfig, NetgenConfig, RoutePolicy, Router};
use edgepc_serve::{ArrivalPattern, EngineConfig, ModelSpec, ServeError};
use edgepc_trace::{json::parse, with_registry, Registry};

fn specs() -> Vec<ModelSpec> {
    vec![ModelSpec::pointnetpp_tiny(4)]
}

/// A shard whose workers stall 200 ms per batch is the primary for some
/// tenant; with hedging armed, the hedge to the healthy shard must win
/// and the client must not eat the stall.
#[test]
fn slow_shard_hedge_wins() {
    let registry = Arc::new(Registry::new());
    with_registry(Arc::clone(&registry), || {
        let slow = Duration::from_millis(200);
        let mut cfg0 = EngineConfig::new(1);
        cfg0.exec_delay = slow; // chaos: shard 0 stalls every batch
        let cfg1 = EngineConfig::new(1);
        let router = Router::new(
            vec![cfg0, cfg1],
            specs(),
            RoutePolicy::TenantHash,
            Some(HedgeConfig::after(Duration::from_millis(20))),
        );
        // Find a tenant whose sticky primary is the slow shard.
        let tenant = (0..64u64)
            .find(|&t| router.route_for(0, t) == Some(0))
            .expect("some tenant lands on shard 0");
        let cloud = bunny_with_points(96, 0xbad);
        let t0 = Instant::now();
        let rt = router.submit(0, tenant, cloud, None).expect("admitted");
        assert_eq!(rt.shard(), 0, "primary is the slow shard");
        let out = router.settle(rt).expect("resolved");
        let elapsed = t0.elapsed();
        assert!(out.hedged, "the hedge must win against a stalled shard");
        assert_eq!(out.shard, 1, "resolved on the healthy shard");
        assert!(
            elapsed < slow,
            "client waited {elapsed:?}, the full stall is {slow:?}"
        );
        assert!(registry.counter(metrics::HEDGES) >= 1);
        assert!(registry.counter(metrics::HEDGE_WINS) >= 1);
        router.shutdown();
    });
}

/// A shard killed mid-load: the router marks it down on the first
/// `ShuttingDown` refusal and fails over; nothing hangs, and health
/// reflects the loss.
#[test]
fn killed_shard_fails_over_without_hanging() {
    let registry = Arc::new(Registry::new());
    with_registry(Arc::clone(&registry), || {
        let router = Router::new(
            vec![EngineConfig::new(1), EngineConfig::new(1)],
            specs(),
            RoutePolicy::LeastLoaded,
            None,
        );
        // Kill shard 0 out from under the router.
        router.shard_engine(0).expect("shard 0").shutdown();
        assert_eq!(router.healthy(), vec![true, true], "not yet observed");
        for i in 0..6u64 {
            let rt = router
                .submit(0, i, bunny_with_points(96, i), None)
                .expect("failover admits on the live shard");
            let out = router.settle(rt).expect("resolved");
            assert_eq!(out.shard, 1, "all work lands on the survivor");
        }
        // The dead shard was observed and marked down.
        assert_eq!(router.healthy(), vec![false, true]);
        assert!(registry.counter(metrics::FAILOVERS) >= 1);
        router.shutdown();
    });
}

/// Queue-full storm: every eligible queue saturated. The router must
/// shed with a typed error immediately — degradation is refusal, never a
/// hang — and admitted work still completes.
#[test]
fn queue_full_storm_sheds_typed_and_finishes() {
    let registry = Arc::new(Registry::new());
    with_registry(Arc::clone(&registry), || {
        let mut cfg = EngineConfig::new(1);
        cfg.queue_capacity = 2;
        cfg.max_batch = 1;
        cfg.exec_delay = Duration::from_millis(30); // keep the queue full
        let router = Router::new(vec![cfg], specs(), RoutePolicy::LeastLoaded, None);
        let t0 = Instant::now();
        let mut admitted = Vec::new();
        let mut shed = 0usize;
        for i in 0..12u64 {
            match router.submit(0, i, bunny_with_points(96, i), None) {
                Ok(rt) => admitted.push(rt),
                Err(ServeError::QueueFull { .. }) => shed += 1,
                Err(other) => panic!("storm must shed typed, got {other}"),
            }
        }
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "submission under storm must not block"
        );
        assert!(shed > 0, "a 2-deep queue cannot absorb 12 instant arrivals");
        assert_eq!(registry.counter(metrics::SHED), shed as u64);
        for rt in admitted {
            router.settle(rt).expect("admitted work completes");
        }
        router.shutdown();
    });
}

/// A netgen run over real sockets with the slow-shard chaos knob set:
/// the sweep completes and the written report records the degraded
/// operation — the chaos knob itself, and the hedges it forced.
#[test]
fn chaos_run_records_degradation_in_report() {
    let cfg = NetgenConfig {
        shards: vec![2],
        connections: 2,
        requests: 32,
        rate_rps: 200.0,
        pattern: ArrivalPattern::Burst { size: 8 },
        seed: 0xc4a05,
        points: 96,
        tenants: 6,
        deadline: Duration::from_secs(2),
        workers_per_shard: 1,
        queue_capacity: 64,
        max_batch: 4,
        policy: RoutePolicy::TenantHash, // sticky tenants cannot dodge the slow shard
        hedge_after: Some(Duration::from_millis(30)),
        chaos_slow_shard: Some(Duration::from_millis(150)),
    };
    let row = run_row(&cfg, 2).expect("chaos row runs");
    assert_eq!(row.outcome.lost, 0, "degradation, not lost responses");
    assert!(
        row.hedges_attempted > 0,
        "sticky tenants on a 150ms-stalled shard past a 30ms hedge threshold must hedge"
    );
    assert!(row.outcome.completed > 0, "the healthy shard still serves");

    let report = edgepc_net::NetReport {
        config: cfg,
        rows: vec![row],
    };
    let doc = net_json(&report);
    let v = parse(&doc).expect("report parses");
    let load = v.get("load").expect("load block");
    assert_eq!(
        load.get("chaos_slow_shard_ms").and_then(|x| x.as_f64()),
        Some(150.0),
        "the chaos knob is recorded, not hidden"
    );
    let sweep = v.get("sweep").and_then(|s| s.as_arr()).expect("sweep");
    let hedges = sweep[0].get("hedges").expect("hedges block");
    assert!(hedges.get("attempted").and_then(|x| x.as_f64()).expect("n") > 0.0);
}
