//! End-to-end observability: a real `PointNetPpSeg::forward` run captured
//! under a local trace registry exports a Chrome `trace_event` document
//! that parses and shows the sampler / neighbor-search spans nested inside
//! their pipeline stages.

use edgepc::prelude::*;
use edgepc_trace::{json, SpanData};

fn bunny_cloud() -> PointCloud {
    edgepc_data::bunny_with_points(512, 9)
}

fn forward_spans() -> Vec<SpanData> {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    let (_, spans) = edgepc_trace::with_local(|| {
        let mut model = PointNetPpSeg::new(&config, 3);
        model.forward(&cloud)
    });
    spans
}

fn find<'a>(spans: &'a [SpanData], name: &str) -> &'a SpanData {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no span named {name}"))
}

#[test]
fn forward_emits_nested_sampler_and_search_spans() {
    let spans = forward_spans();

    // The outer model span encloses every stage span of the run.
    let forward = find(&spans, "pointnetpp.forward");
    assert_eq!(forward.kind, "model");
    for s in &spans {
        assert!(forward.encloses(s), "{} escapes the forward span", s.name);
    }

    // The EdgePC strategy puts the Morton sampler on sa1; the library-level
    // sampler span nests inside the stage span.
    let stage = find(&spans, "sa1.sample(morton)");
    let sampler = find(&spans, "morton.sample");
    assert!(
        stage.encloses(sampler),
        "sampler span must nest in its stage"
    );
    assert!(stage.depth < sampler.depth);

    // Same for the neighbor search: sa1 uses the Morton window.
    let search_stage = find(&spans, "sa1.search(window)");
    let searcher = find(&spans, "window.search");
    assert!(search_stage.encloses(searcher));

    // Stage spans carry both measured ops and the modeled Xavier cost.
    assert!(stage.ops.morton_encodes > 0);
    assert!(stage.modeled_ms.unwrap() > 0.0);
    assert!(stage.modeled_mj.unwrap() > 0.0);
}

#[test]
fn chrome_trace_export_parses_with_nested_events() {
    let spans = forward_spans();
    let doc = edgepc_trace::export::chrome_trace_json(&spans);

    let v = json::parse(&doc).expect("chrome trace must be valid JSON");
    let events = v.as_arr().expect("trace_event document is an array");
    assert_eq!(events.len(), spans.len());

    let event = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("no event named {name}"))
    };
    let range = |e: &json::Value| {
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        let dur = e.get("dur").unwrap().as_f64().unwrap();
        (ts, ts + dur)
    };

    // The viewer recovers nesting from timestamp containment; check it on
    // the parsed document, not just the in-memory spans.
    let (fs, fe) = range(event("pointnetpp.forward"));
    for pair in [
        ("sa1.sample(morton)", "morton.sample"),
        ("sa1.search(window)", "window.search"),
    ] {
        let (outer_s, outer_e) = range(event(pair.0));
        let (inner_s, inner_e) = range(event(pair.1));
        assert!(fs <= outer_s && outer_e <= fe, "{} outside forward", pair.0);
        assert!(
            outer_s <= inner_s && inner_e <= outer_e,
            "{} outside {}",
            pair.1,
            pair.0
        );
    }

    // Complete events with op counts in args.
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert!(e
            .get("args")
            .unwrap()
            .get("ops")
            .unwrap()
            .get("mac")
            .is_some());
    }
    let sampled = event("sa1.sample(morton)");
    assert!(
        sampled
            .get("args")
            .unwrap()
            .get("modeled_ms")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0,
        "priced stage must export its modeled time"
    );
}

#[test]
fn registry_histograms_cover_stage_latencies() {
    let cloud = bunny_cloud();
    let config = PointNetPpConfig::tiny(3, PipelineStrategy::edgepc_pointnetpp(2, 16));
    let reg = std::sync::Arc::new(edgepc_trace::Registry::new());
    edgepc_trace::with_registry(reg.clone(), || {
        let mut model = PointNetPpSeg::new(&config, 3);
        for _ in 0..3 {
            let _ = model.forward(&cloud);
        }
    });
    let h = reg
        .histogram("sa1.sample(morton)")
        .expect("stage histogram recorded");
    assert_eq!(h.count(), 3);
    assert!(h.p50() <= h.p99());
}
