//! Cross-crate integration: datasets -> models -> stage records -> device
//! pricing -> energy, for both model families and both strategy sets.

use edgepc::prelude::*;
use edgepc::{analysis::run_records, characterize, compare, EdgePcConfig, Variant, Workload};
use edgepc_sim::StageKind;

const POINTS: usize = 384;

#[test]
fn every_workload_characterizes() {
    let cfg = EdgePcConfig::paper_default();
    for w in Workload::ALL {
        let cost = characterize(w, Variant::Baseline, &cfg, POINTS.min(w.spec().points));
        assert!(cost.total_ms() > 0.0, "{w}: empty cost");
        assert!(cost.sample_and_neighbor_ms() > 0.0, "{w}: no S+N stages");
        assert!(
            cost.time_of(StageKind::FeatureCompute) > 0.0,
            "{w}: no FC stages"
        );
    }
}

#[test]
fn edgepc_never_loses_on_sample_and_neighbor_stages() {
    let cfg = EdgePcConfig::paper_default();
    // One workload per model family / task keeps the debug-mode runtime
    // reasonable; the release-mode fig13 harness covers all six.
    for w in [Workload::W1, Workload::W3, Workload::W6] {
        let c = compare(w, &cfg, POINTS.min(w.spec().points));
        assert!(
            c.sn_stage_speedup > 1.0,
            "{w}: S+N speedup {} not > 1",
            c.sn_stage_speedup
        );
        assert!(c.e2e_speedup_sn > 0.95, "{w}: E2E {}", c.e2e_speedup_sn);
        assert!(
            c.e2e_speedup_snf >= c.e2e_speedup_sn - 1e-9,
            "{w}: tensor cores made things worse"
        );
    }
}

#[test]
fn stage_records_carry_consistent_batches() {
    let cfg = EdgePcConfig::paper_default();
    for w in [Workload::W1, Workload::W3] {
        let spec = w.spec();
        let records = run_records(w, Variant::Baseline, &cfg, POINTS);
        for r in &records {
            // Work counters were scaled by the batch size.
            if r.ops.dist3 > 0 {
                assert_eq!(r.ops.dist3 % spec.batch as u64, 0, "{w}/{}", r.name);
            }
            if r.ops.mac > 0 {
                assert_eq!(r.ops.mac % spec.batch as u64, 0, "{w}/{}", r.name);
            }
        }
    }
}

#[test]
fn fc_stages_have_channel_annotations() {
    let cfg = EdgePcConfig::paper_default();
    let records = run_records(Workload::W1, Variant::SN, &cfg, POINTS);
    for r in records
        .iter()
        .filter(|r| r.kind == StageKind::FeatureCompute)
    {
        assert!(r.fc_k.is_some(), "{} lacks fc_k", r.name);
        assert!(r.ops.mac > 0, "{} has no MAC work", r.name);
    }
}

#[test]
fn energy_accounting_is_consistent_with_latency() {
    let cfg = EdgePcConfig::paper_default();
    let c = compare(Workload::W5, &cfg, POINTS);
    let energy = EnergyModel::jetson_agx_xavier();
    // EdgePC energy = time x its (lower compute, higher memory) power; the
    // saving must be bounded by the latency ratio times the power ratio.
    let p_base = energy.power_w(PowerState::default());
    let p_edge = energy.power_w(PowerState {
        morton_approx: true,
        neighbor_reuse: true,
    });
    let bound = 1.0 - (p_edge / p_base) / c.e2e_speedup_sn;
    assert!(
        (c.energy_saving_sn - bound).abs() < 1e-9,
        "saving {} vs bound {bound}",
        c.energy_saving_sn
    );
}

#[test]
fn morton_variant_eliminates_fps_distance_work_in_first_layer() {
    let cfg = EdgePcConfig::paper_default();
    let base = run_records(Workload::W2, Variant::Baseline, &cfg, POINTS);
    let edge = run_records(Workload::W2, Variant::SN, &cfg, POINTS);
    let sa1_sample = |rs: &[StageRecord]| {
        rs.iter()
            .find(|r| r.name.starts_with("sa1.sample"))
            .expect("sa1 sample record")
            .ops
    };
    assert!(sa1_sample(&base).dist3 > 0);
    assert_eq!(
        sa1_sample(&edge).dist3,
        0,
        "Morton sampling needs no distances"
    );
    assert!(sa1_sample(&edge).morton_encodes > 0);
}

#[test]
fn window_factor_trades_quality_for_speed_at_pipeline_level() {
    let narrow = EdgePcConfig {
        window_factor: 1,
        ..EdgePcConfig::paper_default()
    };
    let wide = EdgePcConfig {
        window_factor: 8,
        ..EdgePcConfig::paper_default()
    };
    let c_narrow = compare(Workload::W2, &narrow, POINTS);
    let c_wide = compare(Workload::W2, &wide, POINTS);
    assert!(
        c_narrow.sn_stage_speedup >= c_wide.sn_stage_speedup,
        "narrow {} vs wide {}",
        c_narrow.sn_stage_speedup,
        c_wide.sn_stage_speedup
    );
}
