//! Cross-crate integration: the quality of the Morton approximations on
//! every synthetic dataset — the empirical backbone of the paper's
//! accuracy claims.

use edgepc::prelude::*;

fn datasets() -> Vec<(&'static str, PointCloud)> {
    let cfg = DatasetConfig {
        classes: 1,
        train_per_class: 1,
        test_per_class: 1,
        points_per_cloud: Some(1024),
        seed: 99,
    };
    vec![
        ("modelnet-like", modelnet_like(&cfg).test[0].cloud.clone()),
        ("shapenet-like", shapenet_like(&cfg).test[0].cloud.clone()),
        ("s3dis-like", s3dis_like(&cfg).test[0].cloud.clone()),
        ("scannet-like", scannet_like(&cfg).test[0].cloud.clone()),
    ]
}

#[test]
fn morton_sampling_coverage_tracks_fps_on_all_datasets() {
    for (name, cloud) in datasets() {
        let n = 128;
        let fps = FarthestPointSampler::new()
            .sample(&cloud, n)
            .extract(&cloud);
        let mc = MortonSampler::paper_default()
            .sample(&cloud, n)
            .extract(&cloud);
        let ch_fps = chamfer_distance(cloud.points(), fps.points());
        let ch_mc = chamfer_distance(cloud.points(), mc.points());
        assert!(
            ch_mc < 1.8 * ch_fps,
            "{name}: morton chamfer {ch_mc} vs fps {ch_fps}"
        );
    }
}

#[test]
fn window_search_fnr_is_bounded_and_monotone_on_all_datasets() {
    let k = 16;
    for (name, cloud) in datasets() {
        let queries: Vec<usize> = (0..cloud.len()).step_by(8).collect();
        let exact = BruteKnn::new().search(&cloud, &queries, k);
        let mut last = 1.1f64;
        for factor in [1usize, 4, 16] {
            let r = MortonWindowSearcher::new(factor * k, 10).search(&cloud, &queries, k);
            let fnr = false_neighbor_ratio(&r.neighbors, &exact.neighbors);
            assert!(
                fnr <= last + 0.03,
                "{name}: FNR not monotone at W={factor}k: {fnr} after {last}"
            );
            assert!(
                fnr < 0.8,
                "{name}: FNR {fnr} at W={factor}k is uselessly high"
            );
            last = fnr;
        }
    }
}

#[test]
fn all_exact_searchers_agree_on_all_datasets() {
    let k = 8;
    for (name, cloud) in datasets() {
        let queries: Vec<usize> = (0..cloud.len()).step_by(64).collect();
        let brute = BruteKnn::new().search(&cloud, &queries, k);
        let kd = KdTree::build(&cloud).search(&cloud, &queries, k);
        let grid = GridSearcher::new().search(&cloud, &queries, k);
        for (qi, ((b, t), g)) in brute
            .neighbors
            .iter()
            .zip(&kd.neighbors)
            .zip(&grid.neighbors)
            .enumerate()
        {
            let sort = |v: &Vec<usize>| {
                let mut v = v.clone();
                v.sort_unstable();
                v
            };
            // Distance ties can legitimately reorder membership; compare
            // the realized distance multisets instead of raw indices.
            let q = cloud.point(queries[qi]);
            let dists = |v: &Vec<usize>| {
                let mut d: Vec<f32> = v
                    .iter()
                    .map(|&j| q.distance_squared(cloud.point(j)))
                    .collect();
                d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                d
            };
            assert_eq!(dists(&sort(b)), dists(&sort(t)), "{name} q{qi}: kdtree");
            assert_eq!(dists(&sort(b)), dists(&sort(g)), "{name} q{qi}: grid");
        }
    }
}

#[test]
fn morton_interpolation_tracks_exact_on_scene_data() {
    let cloud = s3dis_like(&DatasetConfig {
        classes: 1,
        train_per_class: 1,
        test_per_class: 1,
        points_per_cloud: Some(1024),
        seed: 5,
    })
    .test[0]
        .cloud
        .clone();
    let r = MortonSampler::paper_default().sample(&cloud, 256);
    let s = r.structurized.as_ref().unwrap();
    let dense_sorted = s.cloud().points().to_vec();
    let inv = s.inverse_permutation();
    let mut positions: Vec<usize> = r.indices.iter().map(|&i| inv[i]).collect();
    positions.sort_unstable();
    let sparse: Vec<Point3> = positions.iter().map(|&p| dense_sorted[p]).collect();
    // Smooth spatial feature: height.
    let feats = FeatureMatrix::from_vec(sparse.iter().map(|p| p.z).collect(), 256, 1);

    let exact = ThreeNnInterpolator::new().interpolate(&dense_sorted, &sparse, &feats);
    let approx = MortonInterpolator::new().interpolate(&dense_sorted, &positions, &feats);
    let mut err_exact = 0.0f32;
    let mut err_approx = 0.0f32;
    for (j, p) in dense_sorted.iter().enumerate() {
        err_exact += (exact.features.row(j)[0] - p.z).abs();
        err_approx += (approx.features.row(j)[0] - p.z).abs();
    }
    assert!(
        err_approx < 2.5 * err_exact + 1.0,
        "approx {err_approx} vs exact {err_exact}"
    );
}

#[test]
fn structuredness_improves_on_every_dataset() {
    use edgepc_morton::locality::window_hit_rate;
    for (name, cloud) in datasets() {
        // Sub-sample for the O(N^2) ground-truth computation.
        let small = cloud.permuted(&(0..cloud.len()).step_by(4).collect::<Vec<_>>());
        let sorted = Structurizer::paper_default()
            .structurize(&small)
            .into_cloud();
        let raw_rate = window_hit_rate(small.points(), 4, 32);
        let sorted_rate = window_hit_rate(sorted.points(), 4, 32);
        assert!(
            sorted_rate >= raw_rate,
            "{name}: sorting reduced structuredness ({raw_rate} -> {sorted_rate})"
        );
    }
}
