//! Workspace-level serving invariants: the engine's outputs must not
//! depend on how many workers execute the requests, and a full loadgen
//! run must produce a parseable serve.json document.

use std::time::Duration;

use edgepc_data::bunny_with_points;
use edgepc_serve::{
    report, run_loadgen, ArrivalPattern, Engine, EngineConfig, LoadgenConfig, ModelSpec, Request,
};

/// Runs the same 12 requests through an engine with `workers` workers and
/// `intra_threads` of intra-batch parallelism, returning every logits
/// vector in submission order.
fn run_with(workers: usize, intra_threads: usize) -> Vec<Vec<f32>> {
    let mut cfg = EngineConfig::new(workers);
    cfg.max_batch = 3;
    cfg.batch_linger = Duration::from_millis(2);
    cfg.intra_threads = intra_threads;
    let engine = Engine::new(
        cfg,
        vec![ModelSpec::pointnetpp_tiny(4), ModelSpec::dgcnn_cls_tiny(5)],
    );
    let tickets: Vec<_> = (0..12u64)
        .map(|i| {
            let cloud = bunny_with_points(192, 0xd0 + i);
            let model = (i % 2) as usize;
            engine
                .submit(Request::new(model, cloud))
                .unwrap_or_else(|e| panic!("submit admitted: {e}"))
        })
        .collect();
    let outputs = tickets
        .into_iter()
        .map(|t| {
            let out = t
                .wait()
                .unwrap_or_else(|e| panic!("request completed: {e}"));
            out.logits.as_slice().to_vec()
        })
        .collect();
    engine.shutdown();
    outputs
}

#[test]
fn outputs_are_worker_count_independent() {
    // Same seed, same requests: one worker and four workers must produce
    // bit-identical logits for every request, in submission order. This
    // is the determinism contract: replicas are seeded identically and
    // forwards are pure, so scheduling affects latency, never results.
    let solo = run_with(1, 0);
    let quad = run_with(4, 0);
    assert_eq!(solo.len(), quad.len());
    for (i, (a, b)) in solo.iter().zip(&quad).enumerate() {
        assert_eq!(a, b, "request {i} diverged between 1 and 4 workers");
    }
}

#[test]
fn outputs_are_unchanged_by_intra_batch_parallelism() {
    // Turning on intra-batch parallelism (each worker scoping an
    // edgepc_par budget around its forwards) must not change a single
    // bit: the parallel kernels fix their chunk boundaries independently
    // of the thread budget. Cross-check both worker counts.
    let baseline = run_with(1, 1);
    for (workers, intra) in [(1usize, 4usize), (2, 2), (2, 8)] {
        let got = run_with(workers, intra);
        assert_eq!(baseline.len(), got.len());
        for (i, (a, b)) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(
                a, b,
                "request {i} diverged with {workers} workers x {intra} intra-threads"
            );
        }
    }
}

#[test]
fn loadgen_round_trip_produces_valid_serve_json() {
    let mut engine_cfg = EngineConfig::new(2);
    engine_cfg.queue_capacity = 16;
    let load_cfg = LoadgenConfig {
        requests: 48,
        rate_rps: 800.0,
        pattern: ArrivalPattern::Burst { size: 16 },
        seed: 0xcafe,
        points: 96,
        model: 0,
        deadline: Some(Duration::from_millis(500)),
    };
    let engine = Engine::new(engine_cfg.clone(), vec![ModelSpec::pointnetpp_tiny(4)]);
    let outcome = run_loadgen(&engine, &load_cfg);
    engine.shutdown();

    assert_eq!(
        outcome.submitted + outcome.shed,
        load_cfg.requests,
        "every request is either admitted or shed at submission"
    );
    assert_eq!(
        outcome.completed + outcome.expired + outcome.lost,
        outcome.submitted,
        "every admitted request resolves exactly once"
    );
    assert!(outcome.completed > 0, "some requests must complete");

    let doc = report::serve_json(&engine_cfg, &load_cfg, &outcome);
    let v = edgepc_trace::json::parse(&doc).expect("serve.json parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some(report::SCHEMA_NAME)
    );
    let completed = v
        .get("outcome")
        .and_then(|o| o.get("completed"))
        .and_then(|c| c.as_f64());
    assert_eq!(completed, Some(outcome.completed as f64));
}
