//! The paper's worked examples, end to end across crates: the 5-point cloud
//! of Fig. 8/10 flows through encoding, structurization, both samplers and
//! all searchers, landing on exactly the numbers printed in the paper.

use edgepc::prelude::*;

/// The example points of paper Fig. 8/10 (recovered by decoding the Morton
/// codes the paper lists).
fn paper_points() -> PointCloud {
    PointCloud::from_points(vec![
        Point3::new(3.0, 6.0, 2.0), // P0 -> code 185
        Point3::new(1.0, 3.0, 1.0), // P1 -> code 23
        Point3::new(4.0, 3.0, 2.0), // P2 -> code 114
        Point3::new(0.0, 0.0, 0.0), // P3 -> code 0
        Point3::new(5.0, 1.0, 0.0), // P4 -> code 67
    ])
}

#[test]
fn sec41_morton_code_example() {
    // "(2, 3, 4) = (010, 011, 100)b translates to Morton code 282".
    assert_eq!(encode(2, 3, 4), 282);
    assert_eq!(decode(282), (2, 3, 4));
}

#[test]
fn fig8b_codes_sort_and_samples() {
    let cloud = paper_points();
    let grid = VoxelGrid::with_cell_size(Point3::ORIGIN, 1.0, 10);
    let codes: Vec<u64> = cloud.iter().map(|p| grid.morton_code(p)).collect();
    assert_eq!(codes, vec![185, 23, 114, 0, 67]);

    let s = Structurizer::new(10).structurize_with_grid(&cloud, grid);
    assert_eq!(s.permutation(), &[3, 1, 4, 2, 0]);
}

#[test]
fn fig8a_fps_walkthrough() {
    // FPS seeded at P0 samples {P0, P3, P4}.
    let r = FarthestPointSampler::new().sample(&paper_points(), 3);
    assert_eq!(r.indices, vec![0, 3, 4]);
}

#[test]
fn fig8_morton_sampler_matches_fps_at_fine_grid() {
    // At r = 1 the Morton sampler picks the same set {P3, P4, P0} FPS does.
    let cloud = paper_points();
    let grid = VoxelGrid::with_cell_size(Point3::ORIGIN, 1.0, 10);
    let s = Structurizer::new(10).structurize_with_grid(&cloud, grid);
    let picks: Vec<usize> = [0usize, 2, 4].iter().map(|&p| s.permutation()[p]).collect();
    assert_eq!(picks, vec![3, 4, 0]);
}

#[test]
fn fig10a_exact_searchers() {
    let cloud = paper_points();
    // Ball query with (squared) radius 11 picks {P0, P1, P4} for P2.
    let bq = BallQuery::new(11.0).search(&cloud, &[2], 3);
    assert_eq!(bq.neighbors[0], vec![0, 1, 4]);
    // k-NN picks the same set (P4 nearest at d2 = 9).
    let knn = BruteKnn::new().search(&cloud, &[2], 3);
    let mut got = knn.neighbors[0].clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 4]);
}

#[test]
fn fig10b_window_search() {
    // With W = k + 1 = 4 the index window around P2 selects {P1, P4, P0}.
    let cloud = paper_points();
    let r = MortonWindowSearcher::new(4, 10).search(&cloud, &[2], 3);
    let mut got = r.neighbors[0].clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 4]);
}

#[test]
fn sec513_memory_overhead_formula() {
    // "N * a / 8 bytes": 32-bit codes over 8192 points = 32 KiB, matching
    // the paper's "up to 32KB" per batch figure.
    let s = Structurizer::paper_default();
    assert_eq!(s.code_overhead_bytes(8192), 32 * 1024);
}

#[test]
fn sec42_timing_anchors_on_bunny() {
    // FPS ~81.7 ms vs uniform ~1 ms in the standalone profiling regime.
    let cloud = bunny();
    let device = XavierModel::jetson_agx_xavier();
    let fps = FarthestPointSampler::new().sample(&cloud, 1024);
    let uni = UniformSampler::new().sample(&cloud, 1024);
    let t_fps = device.stage_time_ms(&fps.ops, ExecMode::Standalone);
    let t_uni = device.stage_time_ms(&uni.ops, ExecMode::Standalone);
    assert!((t_fps - 81.7).abs() < 10.0, "FPS anchor {t_fps} ms");
    assert!(t_uni < 1.5, "uniform anchor {t_uni} ms");
    assert!(t_fps / t_uni > 50.0, "the gap the paper motivates with");
}
