//! Semantic segmentation of an indoor scene with PointNet++ — the paper's
//! motivating autonomous-perception workload (W1) — with a full per-stage
//! latency/energy report from the device model.
//!
//! Run with `cargo run --release --example segment_room`.

use edgepc::prelude::*;

fn main() {
    let ds = s3dis_like(&DatasetConfig {
        classes: 1,
        train_per_class: 1,
        test_per_class: 1,
        points_per_cloud: Some(4096),
        seed: 7,
    });
    let cloud = &ds.test[0].cloud;
    println!(
        "scene: {} points, {} semantic classes",
        cloud.len(),
        ds.num_classes
    );

    let device = XavierModel::jetson_agx_xavier();
    let energy = EnergyModel::jetson_agx_xavier();

    let run = |label: &str, strategy: PipelineStrategy, state: PowerState| {
        let config = PointNetPpConfig::paper(cloud.len(), strategy);
        let mut model = PointNetPpSeg::new(&config, ds.num_classes);
        let (logits, records) = model.forward(cloud);
        let cost = price_stages(&records, &device, false);
        println!("\n== {label} ==");
        println!("{cost}");
        println!(
            "energy: {:.1} mJ at {:.2} W",
            energy.energy_mj(cost.total_ms(), state),
            energy.power_w(state)
        );
        // Show the segmentation output is real: per-class prediction counts.
        let preds = edgepc_nn::loss::argmax_rows(&logits);
        let mut counts = vec![0usize; ds.num_classes];
        for &p in &preds {
            counts[p as usize] += 1;
        }
        println!("predicted class histogram: {counts:?}");
        cost.total_ms()
    };

    let base = run(
        "baseline (FPS + ball query + exact interp)",
        PipelineStrategy::baseline(),
        PowerState::default(),
    );
    let edge = run(
        "EdgePC (Morton sample + window search + stride interp)",
        PipelineStrategy::edgepc_pointnetpp(4, 128),
        PowerState {
            morton_approx: true,
            neighbor_reuse: false,
        },
    );
    println!("\nend-to-end speedup: {:.2}x", base / edge);
}
