//! Quickstart: structurize a point cloud with Morton codes, compare the
//! EdgePC sampler / neighbor searcher against the SOTA baselines, and price
//! both on the Jetson AGX Xavier device model.
//!
//! Run with `cargo run --release --example quickstart`.

use edgepc::prelude::*;

fn main() {
    // A scanned-looking cloud: the 40 256-point bunny-like model.
    let cloud = bunny();
    println!(
        "cloud: {} points, bbox extent {}",
        cloud.len(),
        cloud.bounding_box().extent()
    );

    // --- Structurize: sort along the Z-order curve ---
    let structurized = Structurizer::paper_default().structurize(&cloud);
    println!(
        "structurized {} points with {}-bit Morton codes ({} extra bytes)",
        structurized.cloud().len(),
        Structurizer::paper_default().code_bits(),
        Structurizer::paper_default().code_overhead_bytes(cloud.len()),
    );

    // --- Down-sample 1024 points: FPS vs the Morton sampler ---
    let n = 1024;
    let fps = FarthestPointSampler::new().sample(&cloud, n);
    let morton = MortonSampler::paper_default().sample(&cloud, n);
    let device = XavierModel::jetson_agx_xavier();
    println!("\nsampling {n} points:");
    for (name, r) in [
        ("farthest point sampling", &fps),
        ("morton sampler", &morton),
    ] {
        let t = device.stage_time_ms(&r.ops, ExecMode::Pipeline);
        let quality = coverage_radius(cloud.points(), r.extract(&cloud).points());
        println!(
            "  {name:<26} {:>10.2} ms on-device   covering radius {quality:.4}   ({})",
            t, r.ops
        );
    }

    // --- Neighbor search: brute k-NN vs the Morton window ---
    let k = 16;
    let queries: Vec<usize> = fps.indices.clone();
    let exact = BruteKnn::new().search(&cloud, &queries, k);
    let window = MortonWindowSearcher::new(4 * k, 10).search(&cloud, &queries, k);
    let fnr = false_neighbor_ratio(&window.neighbors, &exact.neighbors);
    println!("\nneighbor search, {} queries, k = {k}:", queries.len());
    for (name, r) in [
        ("brute-force k-NN", &exact),
        ("morton window (W = 4k)", &window),
    ] {
        let t = device.stage_time_ms(&r.ops, ExecMode::Pipeline);
        println!("  {name:<26} {t:>10.2} ms on-device");
    }
    println!(
        "  false neighbor ratio of the approximation: {:.1}%",
        100.0 * fnr
    );
}
