//! Shape classification end to end: train a reduced DGCNN classifier on the
//! ModelNet-like dataset with baseline graphs and with the EdgePC Morton
//! window + neighbor-reuse graphs, then compare accuracy and the modeled
//! edge-device latency (the W3 workload in miniature).
//!
//! Run with `cargo run --release --example classify_shapes`.

use edgepc::prelude::*;
use edgepc_models::trainer::train_dgcnn_classifier;

fn main() {
    let ds = modelnet_like(&DatasetConfig {
        classes: 6,
        train_per_class: 8,
        test_per_class: 4,
        points_per_cloud: Some(256),
        seed: 42,
    });
    println!(
        "dataset: {} ({} classes, {} train / {} test clouds, {} pts each)",
        ds.name,
        ds.num_classes,
        ds.train.len(),
        ds.test.len(),
        ds.points_per_cloud
    );

    let device = XavierModel::jetson_agx_xavier();
    // Accuracy on the reduced trainable model; latency on the paper-shaped
    // model at the W3 scale (1024 points), where the stage costs are
    // work-bound rather than launch-bound.
    let latency_cloud = modelnet_like(&DatasetConfig {
        classes: 1,
        train_per_class: 1,
        test_per_class: 1,
        points_per_cloud: Some(1024),
        seed: 43,
    })
    .test[0]
        .cloud
        .clone();

    let report = |label: &str, tiny: PipelineStrategy, paper: PipelineStrategy| {
        let mut model = DgcnnClassifier::new(&DgcnnConfig::tiny(tiny), ds.num_classes);
        let rep = train_dgcnn_classifier(&mut model, &ds, 30, 0.002);
        let mut full = DgcnnClassifier::new(&DgcnnConfig::paper(paper), ds.num_classes);
        let (_, records) = full.forward(&latency_cloud);
        let cost = price_stages(&records, &device, false);
        println!(
            "{label:<22} test accuracy {:>6.1}%   modeled inference {:>7.2} ms \
             (S+N {:.2} ms, FC {:.2} ms)",
            100.0 * rep.test_accuracy,
            cost.total_ms(),
            cost.sample_and_neighbor_ms(),
            cost.time_of(StageKind::FeatureCompute),
        );
    };

    report(
        "baseline DGCNN",
        PipelineStrategy::baseline_dgcnn(3),
        PipelineStrategy::baseline_dgcnn(4),
    );
    report(
        "EdgePC DGCNN",
        PipelineStrategy::edgepc_dgcnn(3, 32),
        PipelineStrategy::edgepc_dgcnn(4, 80),
    );
    println!(
        "\nEdgePC replaces the first k-NN graph with a Morton index window and \
         reuses it for the next module — same accuracy after retraining, a \
         fraction of the neighbor-search latency."
    );
}
