//! Design-space explorer for the EdgePC knobs (paper Sec. 5.1.3/5.2.3):
//! sweep the Morton code width and the search window size and print the
//! three-way trade-off among neighbor quality (FNR), modeled latency, and
//! memory overhead — the exploration the paper uses to pick 32-bit codes
//! and its per-application window.
//!
//! The sweep runs under a local [`edgepc_trace`] registry, so it finishes
//! by printing a per-stage span summary: measured wall time for every
//! sampler / neighbor-search invocation next to the op counts the sweep
//! accumulated.
//!
//! Run with `cargo run --release --example latency_explorer`.

use edgepc::prelude::*;

fn main() {
    let (_, spans) = edgepc_trace::with_local(explore);
    println!("\n-- span summary (measured wall time per stage) --");
    print!("{}", edgepc_trace::export::Summary(&spans));
}

fn explore() {
    let cloud = scannet_like(&DatasetConfig {
        classes: 1,
        train_per_class: 1,
        test_per_class: 1,
        points_per_cloud: Some(4096),
        seed: 3,
    })
    .test[0]
        .cloud
        .clone();
    let k = 16;
    let queries: Vec<usize> = (0..cloud.len()).step_by(4).collect();
    let device = XavierModel::jetson_agx_xavier();
    let exact = BruteKnn::new().search(&cloud, &queries, k);
    let t_exact = device.stage_time_ms(&exact.ops, ExecMode::Pipeline);
    println!(
        "{} points, {} queries, k = {k}; exact k-NN costs {t_exact:.2} ms\n",
        cloud.len(),
        queries.len()
    );

    println!("-- Morton code width sweep (window W = 4k) --");
    println!(
        "{:<12} {:>12} {:>10} {:>14}",
        "bits/axis", "code bytes", "FNR", "latency"
    );
    for bits in [4u32, 6, 8, 10, 12, 14] {
        let s = Structurizer::new(bits);
        let r = MortonWindowSearcher::new(4 * k, bits).search(&cloud, &queries, k);
        let fnr = false_neighbor_ratio(&r.neighbors, &exact.neighbors);
        let t = device.stage_time_ms(&r.ops, ExecMode::Pipeline);
        println!(
            "{:<12} {:>12} {:>9.1}% {:>11.2} ms{}",
            bits,
            s.code_overhead_bytes(cloud.len()),
            100.0 * fnr,
            t,
            if bits == 10 {
                "   <- paper design point (32-bit codes)"
            } else {
                ""
            }
        );
    }

    println!("\n-- window sweep (10 bits/axis) --");
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "W", "FNR", "latency", "speedup"
    );
    for factor in [1usize, 2, 4, 8, 16, 32] {
        let r = MortonWindowSearcher::new(factor * k, 10).search(&cloud, &queries, k);
        let fnr = false_neighbor_ratio(&r.neighbors, &exact.neighbors);
        let t = device.stage_time_ms(&r.ops, ExecMode::Pipeline);
        println!(
            "{:<12} {:>9.1}% {:>11.2} ms {:>11.2}x",
            format!("{factor}k"),
            100.0 * fnr,
            t,
            t_exact / t
        );
    }
    println!(
        "\nAccuracy-sensitive applications pick wide windows; throughput-bound \
         ones pick W = k (pure index pick). See Fig. 15a in EXPERIMENTS.md."
    );
}
